#include "harness/experiment.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include <chrono>

#include "repl/active.hpp"
#include "repl/passive.hpp"
#include "rio/arena.hpp"
#include "shard/sharded_cluster.hpp"
#include "sim/node.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"

namespace vrep::harness {

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kStandalone:
      return "standalone";
    case Mode::kPassive:
      return "passive backup";
    case Mode::kActive:
      return "active backup";
  }
  return "unknown";
}

namespace {

// Everything belonging to one transaction stream (one primary CPU).
struct Stream {
  rio::Arena primary_arena;
  rio::Arena backup_arena;
  std::unique_ptr<core::TransactionStore> store;
  std::unique_ptr<repl::ActiveBackup> active_backup;
  std::unique_ptr<wl::Workload> workload;
  Rng rng{1};
  std::uint64_t remaining = 0;
};

// The partitioned multi-primary path: a deterministic ShardedCluster load
// (per-shard pipelines, 2PC for the remote-branch mix), with the replica
// convergence and the global balance invariant checked before reporting.
ExperimentResult run_sharded(const ExperimentConfig& config) {
  shard::ShardedConfig cluster_config;
  cluster_config.shards = config.shards;
  cluster_config.backups_per_shard = config.backups_per_shard;
  cluster_config.two_safe = config.two_safe;
  shard::ShardedCluster cluster(cluster_config);

  shard::RebalanceScript script;
  if (config.rebalance_at_txn != 0) {
    script.ops.push_back({shard::RebalanceOp::Kind::kSplit, config.rebalance_at_txn,
                          /*shard=*/0, /*at_hash=*/0});
    script.ops.push_back(
        {shard::RebalanceOp::Kind::kHandoff, config.rebalance_at_txn + 1, /*shard=*/0, 0});
  }

  const auto t0 = std::chrono::steady_clock::now();
  const shard::ShardedCluster::RunResult run = cluster.run(
      config.seed, config.txns_per_stream, config.remote_fraction, {}, script);
  const auto t1 = std::chrono::steady_clock::now();

  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    const std::string err = cluster.check_replicas(s);
    VREP_CHECK(err.empty() && "shard replicas diverged");
  }
  const std::string global = cluster.check_global_consistency();
  VREP_CHECK(global.empty() && "global balance invariant violated");

  ExperimentResult result;
  result.committed = run.committed;
  result.cross_committed = run.cross_committed;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.tps = result.seconds == 0 ? 0
                                   : static_cast<double>(result.committed) / result.seconds;
  return result;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  if (config.shards > 1) return run_sharded(config);
  const bool replicated = config.mode != Mode::kStandalone;

  std::unique_ptr<sim::McFabric> fabric;
  if (replicated) fabric = std::make_unique<sim::McFabric>(config.cost.link);

  sim::Node primary(config.cost, config.streams, fabric.get());
  // The active scheme involves the backup's CPUs (one per stream, matching
  // the paper's SMP backup); passive backups have no active CPU but we still
  // need bus contexts for takeover in tests — not here.
  std::unique_ptr<sim::Node> backup_node;
  if (config.mode == Mode::kActive) {
    backup_node = std::make_unique<sim::Node>(config.cost, config.streams, nullptr);
  }

  core::StoreConfig store_config = wl::suggest_config(config.workload, config.db_size);
  store_config.v0_meta_pad_bytes = config.v0_meta_pad_bytes;

  std::vector<std::unique_ptr<Stream>> streams;
  for (int s = 0; s < config.streams; ++s) {
    auto stream = std::make_unique<Stream>();
    sim::Cpu& cpu = primary.cpu(static_cast<std::size_t>(s));

    if (config.mode == Mode::kActive) {
      const auto layout = repl::ActiveBackupLayout::make(config.db_size, config.ring_capacity);
      stream->primary_arena =
          rio::Arena::create(repl::ActivePrimary::primary_arena_bytes(store_config, layout));
      stream->backup_arena = rio::Arena::create(layout.arena_bytes());
      stream->active_backup = std::make_unique<repl::ActiveBackup>(
          backup_node->cpu(static_cast<std::size_t>(s)), stream->backup_arena, layout, *fabric);
      auto active_primary = std::make_unique<repl::ActivePrimary>(
          cpu.bus(), stream->primary_arena, stream->backup_arena, store_config, layout,
          stream->active_backup.get(), /*format=*/true);
      active_primary->set_two_safe(config.two_safe);
      active_primary->set_commit_window(config.commit_window);
      active_primary->set_group_size(config.commit_group);
      if (config.checkpoint_interval > 0) {
        active_primary->enable_checkpoints(config.checkpoint_interval,
                                           config.checkpoint_copy_bytes);
      }
      stream->store = std::move(active_primary);
    } else {
      const std::size_t arena_bytes = core::required_arena_size(config.version, store_config);
      stream->primary_arena = rio::Arena::create(arena_bytes);
      stream->store =
          core::make_store(config.version, cpu.bus(), stream->primary_arena, store_config,
                           /*format=*/true);
      if (config.mode == Mode::kPassive) {
        stream->backup_arena = rio::Arena::create(arena_bytes);
        repl::setup_passive_replication(*stream->store, stream->primary_arena,
                                        stream->backup_arena,
                                        config.ship_everything_passive);
      }
    }

    stream->workload = wl::make_workload(config.workload, config.db_size);
    stream->workload->initialize(*stream->store);
    stream->store->flush_initial_state();
    if (config.mode == Mode::kPassive) {
      // Ship the initial database image out of band (off the measured path),
      // exactly as an operator would seed a backup before enabling it.
      std::memcpy(stream->backup_arena.data(), stream->primary_arena.data(),
                  stream->primary_arena.size());
    } else if (config.mode == Mode::kActive) {
      std::memcpy(stream->active_backup->db(), stream->store->db(), config.db_size);
    }

    stream->rng = Rng(config.seed * 1000003u + static_cast<std::uint64_t>(s));
    stream->remaining = config.txns_per_stream;
    streams.push_back(std::move(stream));
  }

  // Run. With several streams we always advance the one with the smallest
  // virtual clock, so contention for the shared link is resolved in
  // (approximately transaction-granular) timestamp order.
  // Commit latency = this stream's virtual-clock delta across one txn
  // (dispatch + workload + replication stalls); feeds the per-run result
  // histogram and the process-wide registry timer.
  ExperimentResult result;
  metrics::Timer& latency_timer = metrics::timer("harness.commit_latency_ns");
  if (config.streams == 1) {
    Stream& st = *streams[0];
    sim::Cpu& cpu = primary.cpu(0);
    while (st.remaining-- > 0) {
      const sim::SimTime t0 = cpu.clock().now();
      cpu.bus().charge(config.cost.txn_dispatch_ns);
      st.workload->run_txn(*st.store, st.rng);
      result.commit_latency_ns.add(static_cast<std::uint64_t>(cpu.clock().now() - t0));
    }
  } else {
    while (true) {
      Stream* best = nullptr;
      sim::Cpu* best_cpu = nullptr;
      for (int s = 0; s < config.streams; ++s) {
        if (streams[s]->remaining == 0) continue;
        sim::Cpu& cpu = primary.cpu(static_cast<std::size_t>(s));
        if (best == nullptr || cpu.clock().now() < best_cpu->clock().now()) {
          best = streams[s].get();
          best_cpu = &cpu;
        }
      }
      if (best == nullptr) break;
      const sim::SimTime t0 = best_cpu->clock().now();
      best_cpu->bus().charge(config.cost.txn_dispatch_ns);
      best->workload->run_txn(*best->store, best->rng);
      result.commit_latency_ns.add(static_cast<std::uint64_t>(best_cpu->clock().now() - t0));
      --best->remaining;
    }
  }
  latency_timer.merge(result.commit_latency_ns);

  // Quiesce: flush any buffered group commit and resolve outstanding
  // tickets (a provable no-op at the default W=1, G=1), then drain write
  // buffers and deliver everything in flight.
  for (int s = 0; s < config.streams; ++s) {
    sim::Cpu& cpu = primary.cpu(static_cast<std::size_t>(s));
    if (auto* active = dynamic_cast<repl::ActivePrimary*>(streams[s]->store.get())) {
      active->sync();
    }
    if (cpu.mc() != nullptr) {
      cpu.mc()->flush();
      result.traffic += cpu.mc()->traffic();
      result.mc_stall_seconds += sim::to_seconds(cpu.mc()->stall_ns());
    }
    result.committed += streams[s]->store->committed_seq();
    result.seconds = std::max(result.seconds, sim::to_seconds(cpu.clock().now()));
    if (auto* active = dynamic_cast<repl::ActivePrimary*>(streams[s]->store.get())) {
      result.flow_stall_seconds += sim::to_seconds(active->flow_stall_ns());
    }
  }
  if (fabric != nullptr) {
    fabric->deliver_all();
    result.packets = fabric->total_packets();
    result.avg_packet_bytes =
        result.packets == 0
            ? 0
            : static_cast<double>(fabric->total_bytes()) / static_cast<double>(result.packets);
    result.link_utilization =
        result.seconds == 0 ? 0 : sim::to_seconds(fabric->link().busy_ns) / result.seconds;
  }
  result.tps = result.seconds == 0 ? 0 : static_cast<double>(result.committed) / result.seconds;
  return result;
}

std::string format_ratio(double measured, double paper) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx", paper == 0 ? 0 : measured / paper);
  return buf;
}

}  // namespace vrep::harness
