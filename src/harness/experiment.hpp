// Experiment runner: assembles a complete simulated configuration
// (version x replication mode x workload x database size x #streams),
// executes it on the virtual machine, and reports the measurements the
// paper's tables are built from — transaction throughput and the
// modified/undo/meta breakdown of the bytes shipped to the backup.
#pragma once

#include <cstdint>
#include <string>

#include "core/api.hpp"
#include "sim/alpha_cost_model.hpp"
#include "sim/traffic.hpp"
#include "util/histogram.hpp"
#include "workload/workload.hpp"

namespace vrep::harness {

enum class Mode { kStandalone, kPassive, kActive };

const char* mode_name(Mode m);

struct ExperimentConfig {
  core::VersionKind version = core::VersionKind::kV3InlineLog;
  Mode mode = Mode::kStandalone;
  wl::WorkloadKind workload = wl::WorkloadKind::kDebitCredit;
  std::size_t db_size = 50ull << 20;
  int streams = 1;                        // >1 = SMP primary (Section 8)
  std::uint64_t txns_per_stream = 100'000;
  std::uint64_t seed = 1;
  std::size_t ring_capacity = 1ull << 20;   // active scheme redo ring
  std::size_t v0_meta_pad_bytes = 195;      // see StoreConfig
  // Ablation: undo the Section 5.1 optimisation and write the mirror
  // versions' range array through to the backup as well.
  bool ship_everything_passive = false;
  // Extension: 2-safe active commits (wait for the backup's ack).
  bool two_safe = false;
  // Extension: group commit — up to `commit_group` transactions per ring
  // unit, up to `commit_window` shipped-but-unacked sequences before a
  // commit blocks. Defaults reproduce the classic per-commit behavior.
  unsigned commit_window = 1;
  unsigned commit_group = 1;
  // Extension: incremental fuzzy checkpointing on the active primary — a new
  // checkpoint starts every `checkpoint_interval` commits, advancing
  // `checkpoint_copy_bytes` per commit, truncating redo history at each
  // watermark. 0 = off (the classic bounded-history behavior, default).
  std::uint64_t checkpoint_interval = 0;
  std::size_t checkpoint_copy_bytes = 256 * 1024;
  // Extension: partitioned multi-primary. shards > 1 routes the run through
  // shard::ShardedCluster (per-shard pipelines + 2PC for the remote-branch
  // mix) instead of the virtual-time node; `remote_fraction` of the
  // transactions touch a second shard. streams/version/mode are ignored on
  // this path; txns = txns_per_stream.
  unsigned shards = 1;
  double remote_fraction = 0.0;
  unsigned backups_per_shard = 1;
  // Extension: online rebalance mid-run (sharded path only). Nonzero
  // schedules a split of shard 0's range at its midpoint just before this
  // 1-based transaction index, followed by a planned primary handoff of
  // shard 0 — the scripted "split + hand off under live traffic" recipe.
  std::uint64_t rebalance_at_txn = 0;
  sim::AlphaCostModel cost{};
};

struct ExperimentResult {
  double seconds = 0;              // virtual elapsed time (max over streams);
                                   // wall-clock on the sharded path
  double tps = 0;                  // aggregate committed transactions / s
  std::uint64_t committed = 0;
  std::uint64_t cross_committed = 0;  // sharded path: 2PC commits
  sim::TrafficStats traffic{};     // bytes written through to the backup
  std::uint64_t packets = 0;       // Memory Channel packets on the wire
  double avg_packet_bytes = 0;
  double link_utilization = 0;     // link busy time / elapsed time
  double mc_stall_seconds = 0;     // CPU stalled on a full adapter FIFO
  double flow_stall_seconds = 0;   // active: CPU blocked on a full redo ring
  // Per-transaction virtual-time commit latency (ns), across all streams.
  Histogram commit_latency_ns{};

  double traffic_mb() const { return static_cast<double>(traffic.total()) / 1e6; }
};

ExperimentResult run_experiment(const ExperimentConfig& config);

// Formats "123456" style TPS plus a paper-comparison ratio line; helper for
// the bench binaries.
std::string format_ratio(double measured, double paper);

}  // namespace vrep::harness
