// Online shard rebalancing: migrate the moving record set of a map change
// (split, merge, or any explicit target map) from source to destination
// shards in bounded chunks while every shard keeps committing, then flip
// the live map in one fenced cutover.
//
// Protocol (the cluster header's "Online reconfiguration" note has the
// ownership rule):
//
//   begin(target)   target.version == live.version + 1. Creates any shards
//                   the target names that don't exist yet (they replicate
//                   immediately but receive no routed traffic), computes
//                   the moving set — every record whose owner differs
//                   between the live and target maps — and publishes the
//                   dual-write tracking under every shard latch.
//   step()          one chunk: under the source latch, zero balances are
//                   absorbed for free (nothing to ship) and up to
//                   chunk_records nonzero candidates of one src->dst flow
//                   are collected; those transfer as ONE ordinary
//                   cross-shard 2PC transaction homed on the source
//                   (destination += value, source = 0, decision record on
//                   the source's redo stream — a mid-chunk death resolves
//                   through the existing in-doubt machinery). The
//                   transferred/dirty flags flip inside the home write
//                   generator, under the same continuous latch hold as the
//                   commit, so bookkeeping is atomic with it. Commits that
//                   land on a transferred record afterwards mark it dirty
//                   (ShardedCluster::note_write) and step() re-ships the
//                   residual — the dual-write window.
//   cutover()       take every shard latch (ascending), re-scan: if any
//                   record is untransferred or dirty, back off (keep
//                   stepping); otherwise publish the target map under
//                   map_mu_, retire the migration, and release. Writers are
//                   fenced out for the scan+flip only — the measured
//                   shard.rebalance.cutover_stall_ns.
//
// The transfer rule is move-and-zero over purely additive balances, so the
// final image is independent of how chunks interleave with live commits —
// an oracle may apply the whole moving set at the cutover boundary in one
// shot and still match the cluster CRC byte-for-byte.
#pragma once

#include <cstddef>
#include <cstdint>

#include "shard/sharded_cluster.hpp"

namespace vrep::shard {

class Rebalancer {
 public:
  struct Config {
    std::size_t chunk_records = 64;  // nonzero balances per migration 2PC txn
  };

  explicit Rebalancer(ShardedCluster& cluster) : cluster_(cluster) {}
  Rebalancer(ShardedCluster& cluster, Config config) : cluster_(cluster), config_(config) {}

  // Stage a migration to `target` (must be exactly one version ahead of the
  // live map). CHECKs that no migration is already active.
  void begin(const ShardMap& target);
  // Convenience ops built on begin(): split `shard`'s first owned range at
  // `at_hash` (0 = its midpoint; returns the resolved hash, which the event
  // log records so an oracle can rebuild the same target map), or drain
  // `victim` by handing its ranges to the neighbors.
  std::uint64_t begin_split(ShardId shard, std::uint64_t at_hash = 0);
  void begin_merge(ShardId victim);

  bool active() const { return cluster_.migration_ != nullptr; }
  const ShardMap& target() const;

  // One bounded chunk of transfer work. Returns true while transfer work
  // remains after this chunk; false when the moving set looked drained —
  // try cutover() then (it re-verifies under every latch).
  bool step();
  // Fenced map flip; false (nothing changed) when new dirty work raced in.
  bool cutover();
  // Drive step()/cutover() until the migration is done (bench + tests).
  void run_to_completion();

  // Moving-set size for a prospective map change — what a migration would
  // ship. Pure function of the two maps and the record population; the
  // bench gates on it because it is machine-independent.
  static std::size_t moving_records(const ShardMap& live, const ShardMap& target,
                                    const wl::DebitCredit& workload);

 private:
  ShardedCluster& cluster_;
  Config config_;
};

}  // namespace vrep::shard
