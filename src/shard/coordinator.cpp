#include "shard/coordinator.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"
#include "util/metrics.hpp"

namespace vrep::shard {

CrossShardCoordinator::Outcome CrossShardCoordinator::commit(
    const Participant& home, std::vector<RemoteOp> remotes,
    const WriteGen& home_writes, std::uint64_t xid, const ChaosHook& chaos) {
  VREP_CHECK(!remotes.empty());
  std::sort(remotes.begin(), remotes.end(),
            [](const RemoteOp& a, const RemoteOp& b) { return a.shard.id < b.shard.id; });
  for (const RemoteOp& r : remotes) VREP_CHECK(r.shard.id != home.id);

  // Latch every participant in ascending shard-id order (remotes are sorted
  // by id; merge the home shard into its place).
  std::vector<core::Latch*> latches;
  latches.reserve(remotes.size() + 1);
  {
    bool home_taken = false;
    std::size_t r = 0;
    while (!home_taken || r < remotes.size()) {
      if (!home_taken && (r >= remotes.size() || home.id < remotes[r].shard.id)) {
        latches.push_back(home.latch);
        home_taken = true;
      } else {
        latches.push_back(remotes[r].shard.latch);
        ++r;
      }
    }
  }
  for (core::Latch* l : latches) l->lock();

  Outcome out;
  // Phase 1: stage each remote's writes as an in-doubt prepare. The remote
  // image is untouched until the decision (deferred apply).
  std::vector<std::vector<Write>> remote_writes;
  remote_writes.reserve(remotes.size());
  for (const RemoteOp& r : remotes) {
    remote_writes.push_back(r.writes());  // under the latches
    repl::RedoPipeline& rp = *r.shard.pipeline;
    rp.begin();
    for (const Write& w : remote_writes.back()) {
      rp.stage(w.off, w.bytes.data(), w.bytes.size());
    }
    const std::uint64_t seq = *r.shard.committed + 1;
    *r.shard.committed = seq;  // the sequence is consumed at prepare
    rp.prepare_cross(seq, xid);
    out.remote_seqs.push_back(seq);
  }
  out.prepared = true;
  metrics::counter("shard.coord.prepares").add(remotes.size());

  ShardId dead = kNoKill;
  if (chaos) dead = chaos(Phase::kAfterPrepare, xid);
  if (dead != kNoKill) {
    // A participant died before the commit point: presumed abort. No
    // decision record will ever exist, so live remotes are resolved here
    // and dead ones resolve identically at takeover.
    for (const RemoteOp& r : remotes) {
      if (r.shard.id == dead) continue;
      r.shard.pipeline->decide_cross(xid, false);
      out.decided.push_back(r.shard.id);
    }
    metrics::counter("shard.coord.aborts").add(1);
    for (auto it = latches.rbegin(); it != latches.rend(); ++it) (*it)->unlock();
    return out;
  }

  // Commit point: one ordinary home-shard commit carries the workload
  // writes and the decision record. 2-safe, this returns quorum-covered —
  // the decision survives any single failure before phase 2 runs.
  {
    repl::RedoPipeline& hp = *home.pipeline;
    hp.begin();
    for (const Write& w : home_writes()) {
      hp.stage(w.off, w.bytes.data(), w.bytes.size());
      std::memcpy(home.db + w.off, w.bytes.data(), w.bytes.size());
    }
    std::uint8_t slot[DecisionLog::kSlotBytes];
    DecisionLog::encode_commit(slot, xid);
    const std::uint64_t slot_off = dlog_.slot_off(xid);
    hp.stage(slot_off, slot, sizeof slot);
    std::memcpy(home.db + slot_off, slot, sizeof slot);
    const std::uint64_t seq = *home.committed + 1;
    *home.committed = seq;
    hp.commit(seq);
    out.home_seq = seq;
    out.committed = true;
  }

  if (chaos) dead = chaos(Phase::kAfterHomeCommit, xid);
  // dead == home: the decision is already durable on the home backups;
  // phase 2 proceeds through the surviving remote paths regardless.

  // Phase 2: release in shard-sequence (ascending id) order — apply the
  // deferred bytes and resolve each remote's prepare. A dead remote
  // resolves at takeover against the decision record instead.
  for (std::size_t i = 0; i < remotes.size(); ++i) {
    const RemoteOp& r = remotes[i];
    if (r.shard.id == dead) continue;
    for (const Write& w : remote_writes[i]) {
      std::memcpy(r.shard.db + w.off, w.bytes.data(), w.bytes.size());
    }
    r.shard.pipeline->decide_cross(xid, true);
    out.decided.push_back(r.shard.id);
  }
  metrics::counter("shard.coord.commits").add(1);

  for (auto it = latches.rbegin(); it != latches.rend(); ++it) (*it)->unlock();
  return out;
}

}  // namespace vrep::shard
