#include "shard/rebalancer.hpp"

#include <chrono>
#include <cstring>

#include "core/latch.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"

namespace vrep::shard {

namespace {

std::int32_t read_balance(const std::uint8_t* db, std::uint64_t off) {
  std::int32_t v;
  std::memcpy(&v, db + off, sizeof v);
  return v;
}

// Enumerate the moving set of live -> target over every balance-carrying
// record kind (the ownership rule lives in ShardedCluster::record_key).
template <typename Fn>
void for_each_move(const ShardMap& live, const ShardMap& target,
                   const wl::DebitCredit& workload, Fn&& fn) {
  const auto scan = [&](unsigned kind, std::size_t count, auto offset_of) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t hash = hash_key(ShardedCluster::record_key(kind, i));
      const ShardId src = live.shard_of(hash);
      const ShardId dst = target.shard_of(hash);
      if (src != dst) fn(src, dst, static_cast<std::uint64_t>(offset_of(i)));
    }
  };
  scan(0, workload.num_accounts(), [&](std::size_t i) { return workload.account_offset(i); });
  scan(1, workload.num_tellers(), [&](std::size_t i) { return workload.teller_offset(i); });
  scan(2, workload.num_branches(), [&](std::size_t i) { return workload.branch_offset(i); });
}

}  // namespace

std::size_t Rebalancer::moving_records(const ShardMap& live, const ShardMap& target,
                                       const wl::DebitCredit& workload) {
  std::size_t n = 0;
  for_each_move(live, target, workload, [&](ShardId, ShardId, std::uint64_t) { ++n; });
  return n;
}

const ShardMap& Rebalancer::target() const {
  VREP_CHECK(cluster_.migration_ != nullptr);
  return cluster_.migration_->target;
}

void Rebalancer::begin(const ShardMap& target) {
  VREP_CHECK(cluster_.migration_ == nullptr);
  VREP_CHECK(target.version() == cluster_.map_.version() + 1);
  // Materialize any shards the target names before any byte moves; they
  // replicate from their first commit but the live map routes nothing to
  // them until the cutover.
  while (cluster_.num_shards() < target.num_shards()) cluster_.add_shard();

  std::vector<ShardedCluster::Migration::Move> moves;
  for_each_move(cluster_.map_, target, cluster_.workload_,
                [&](ShardId src, ShardId dst, std::uint64_t off) {
                  moves.push_back({src, dst, off});
                });
  auto migration = std::make_unique<ShardedCluster::Migration>(target, std::move(moves));

  // Publish under every shard latch: any committer that could observe the
  // tracking holds one of these, so after this block note_write sees the
  // migration or the pre-migration null, never a torn state.
  const unsigned n = cluster_.num_shards();
  for (unsigned i = 0; i < n; ++i) cluster_.shard_latch(i).lock();
  {
    std::lock_guard<std::mutex> map_lock(cluster_.map_mu_);
    cluster_.migration_ = std::move(migration);
  }
  for (unsigned i = n; i-- > 0;) cluster_.shard_latch(i).unlock();
  metrics::counter("shard.rebalance.migrations").add(1);
}

std::uint64_t Rebalancer::begin_split(ShardId shard, std::uint64_t at_hash) {
  if (at_hash == 0) {
    // Midpoint of the shard's first owned range: (lower, upper].
    std::uint64_t lower = 0;
    bool found = false;
    for (std::size_t r = 0; r < cluster_.map_.num_ranges(); ++r) {
      const std::uint64_t upper = cluster_.map_.upper_bound(r);
      if (cluster_.map_.owner(r) == shard) {
        at_hash = lower + (upper - lower) / 2;
        found = true;
        break;
      }
      lower = upper;
    }
    VREP_CHECK(found);
  }
  begin(cluster_.map_.split(at_hash));
  return at_hash;
}

void Rebalancer::begin_merge(ShardId victim) { begin(cluster_.map_.merged_out(victim)); }

bool Rebalancer::step() {
  ShardedCluster::Migration* m = cluster_.migration_.get();
  if (m == nullptr) return false;

  // Collect one src->dst flow's chunk. Flags and source balances are only
  // touched under the source shard's latch; zero balances are absorbed
  // right here (nothing to ship — marking them transferred is safe because
  // any later bump lands via note_write as dirty).
  std::vector<std::size_t> chunk;
  ShardId src = 0;
  ShardId dst = 0;
  bool more = false;
  const unsigned shards = cluster_.num_shards();
  for (unsigned s = 0; s < shards && chunk.empty(); ++s) {
    core::LatchGuard guard(cluster_.shard_latch(s));
    const std::uint8_t* db = cluster_.shard_db_ptr(s);
    for (std::size_t i = 0; i < m->moves.size(); ++i) {
      const auto& move = m->moves[i];
      if (move.src != s) continue;
      if (m->transferred[i] != 0 && m->dirty[i] == 0) continue;
      if (read_balance(db, move.off) == 0) {
        // Nothing to ship; if it was dirty the residual is already zero.
        m->transferred[i] = 1;
        m->dirty[i] = 0;
        continue;
      }
      if (!chunk.empty() && move.dst != dst) {
        more = true;  // another flow still has work after this chunk
        continue;
      }
      if (chunk.size() >= config_.chunk_records) {
        more = true;
        break;
      }
      src = move.src;
      dst = move.dst;
      chunk.push_back(i);
    }
  }
  if (chunk.empty()) return more;

  // Ship the chunk as one cross-shard 2PC transaction homed on the SOURCE:
  // its decision record rides the source's redo stream, so a mid-chunk
  // death resolves through the same in-doubt machinery as any cross-shard
  // txn. The write generators run under the coordinator's latches; the
  // bookkeeping flips inside the home generator, atomically with the
  // commit — an aborted chunk leaves every flag untouched and is retried.
  const std::uint64_t xid = cluster_.coordinator_->next_xid(src);

  CrossShardCoordinator::WriteGen remote_writes = [this, m, &chunk, src, dst] {
    std::vector<CrossShardCoordinator::Write> w;
    for (const std::size_t i : chunk) {
      const std::uint64_t off = m->moves[i].off;
      const std::int32_t v = read_balance(cluster_.shard_db_ptr(src), off);
      if (v != 0) {
        const std::int32_t landed = read_balance(cluster_.shard_db_ptr(dst), off) + v;
        std::vector<std::uint8_t> bytes(sizeof landed);
        std::memcpy(bytes.data(), &landed, sizeof landed);
        w.push_back({off, std::move(bytes)});
      }
    }
    return w;
  };
  CrossShardCoordinator::WriteGen home_writes = [this, m, &chunk, src] {
    std::vector<CrossShardCoordinator::Write> w;
    std::uint64_t moved = 0;
    for (const std::size_t i : chunk) {
      const std::uint64_t off = m->moves[i].off;
      if (read_balance(cluster_.shard_db_ptr(src), off) != 0) {
        w.push_back({off, std::vector<std::uint8_t>(sizeof(std::int32_t), 0)});
        moved += 1;
      }
      m->transferred[i] = 1;
      m->dirty[i] = 0;
    }
    cluster_.rb_records_moved_.fetch_add(moved, std::memory_order_relaxed);
    cluster_.rb_bytes_moved_.fetch_add(moved * sizeof(std::int32_t),
                                       std::memory_order_relaxed);
    metrics::counter("shard.rebalance.bytes_moved").add(moved * sizeof(std::int32_t));
    return w;
  };

  std::vector<CrossShardCoordinator::RemoteOp> remotes;
  remotes.push_back({cluster_.shard_participant(dst), std::move(remote_writes)});
  const CrossShardCoordinator::Outcome out = cluster_.coordinator_->commit(
      cluster_.shard_participant(src), std::move(remotes), home_writes, xid);
  for (const ShardId id : out.decided) {
    (void)id;
    cluster_.record_resolution(xid, out.committed);
  }
  VREP_CHECK(out.committed);  // no chaos hook: a live chunk always commits
  cluster_.rb_chunks_.fetch_add(1, std::memory_order_relaxed);
  metrics::counter("shard.rebalance.chunks").add(1);
  return true;
}

bool Rebalancer::cutover() {
  ShardedCluster::Migration* m = cluster_.migration_.get();
  if (m == nullptr) return false;

  // The fence: hold every shard latch while verifying the moving set is
  // fully drained, then flip the map. Any record still pending means a
  // commit raced the drain — back off and keep stepping.
  const auto t0 = std::chrono::steady_clock::now();
  const unsigned n = cluster_.num_shards();
  for (unsigned i = 0; i < n; ++i) cluster_.shard_latch(i).lock();
  bool clean = true;
  for (std::size_t i = 0; i < m->moves.size() && clean; ++i) {
    clean = m->transferred[i] != 0 && m->dirty[i] == 0;
  }
  if (clean) {
    std::lock_guard<std::mutex> map_lock(cluster_.map_mu_);
    cluster_.map_ = m->target;
    cluster_.migration_.reset();
  }
  for (unsigned i = n; i-- > 0;) cluster_.shard_latch(i).unlock();
  if (clean) {
    const auto stall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    cluster_.rb_cutover_stall_ns_.fetch_add(static_cast<std::uint64_t>(stall),
                                            std::memory_order_relaxed);
    cluster_.rb_cutovers_.fetch_add(1, std::memory_order_relaxed);
    metrics::counter("shard.rebalance.cutovers").add(1);
    metrics::counter("shard.rebalance.cutover_stall_ns")
        .add(static_cast<std::uint64_t>(stall));
  }
  return clean;
}

void Rebalancer::run_to_completion() {
  while (active()) {
    if (!step()) cutover();
  }
}

}  // namespace vrep::shard
