// Partitioned ownership: which shard owns which slice of the key space.
//
// The map is a sorted list of inclusive upper bounds over the 64-bit *hash*
// space (keys are hashed first, so contiguous key ranges spread evenly):
// shard i owns (upper[i-1], upper[i]]. The last bound is always 2^64-1, so
// every hash has exactly one owner. The map carries a version so a later
// reconfiguration (split / merge / rebalance — ROADMAP follow-ups) can fence
// routers still holding the old map, exactly the way membership epochs
// fence stale replicas.
//
// The map round-trips through util::Json so deployments can ship it as a
// config artifact; shard names may carry arbitrary BMP strings (the JSON
// parser decodes full \uXXXX escapes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace vrep::shard {

using ShardId = std::uint32_t;

// splitmix64: cheap, well-mixed 64-bit hash for routing keys.
inline std::uint64_t hash_key(std::uint64_t key) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class ShardMap {
 public:
  // N equal hash ranges, version 1, shards named "shard-<i>".
  static ShardMap uniform(unsigned num_shards);

  // Explicit bounds (strictly ascending, last == 2^64-1); one name per
  // shard (empty vector = default names).
  ShardMap(std::vector<std::uint64_t> upper_bounds, std::uint64_t version,
           std::vector<std::string> names = {});

  ShardId shard_of(std::uint64_t hash) const;
  unsigned num_shards() const { return static_cast<unsigned>(upper_.size()); }
  std::uint64_t version() const { return version_; }
  std::uint64_t upper_bound(ShardId shard) const { return upper_.at(shard); }
  const std::string& name(ShardId shard) const { return names_.at(shard); }

  bool operator==(const ShardMap& other) const {
    return version_ == other.version_ && upper_ == other.upper_ && names_ == other.names_;
  }

  Json to_json() const;
  static std::optional<ShardMap> from_json(const Json& json);

 private:
  std::vector<std::uint64_t> upper_;  // inclusive upper bound per shard
  std::vector<std::string> names_;
  std::uint64_t version_ = 1;
};

// Key -> owning shard, through the map's hash ranges. Carries the map
// version so a routing decision can be checked against a reconfigured map.
class Router {
 public:
  explicit Router(const ShardMap& map) : map_(&map) {}

  ShardId route(std::uint64_t key) const { return map_->shard_of(hash_key(key)); }
  std::uint64_t map_version() const { return map_->version(); }

 private:
  const ShardMap* map_;
};

}  // namespace vrep::shard
