// Partitioned ownership: which shard owns which slice of the key space.
//
// The map is a sorted list of inclusive upper bounds over the 64-bit *hash*
// space (keys are hashed first, so contiguous key ranges spread evenly):
// range i covers (upper[i-1], upper[i]] and carries an explicit OWNER shard
// id. The last bound is always 2^64-1, so every hash has exactly one owner.
// Decoupling ranges from shard ids is what makes online reconfiguration
// expressible: split() carves a range in two and hands the upper half to a
// brand-new shard, merged_out() hands a drained shard's ranges to its
// neighbors — in both cases every untouched shard id stays stable, so xids,
// traces and replica sets survive the change.
//
// The map carries a version; every reconfiguration returns a NEW map at
// version+1. Routers and the cross-shard coordinator stamp decisions with
// the version they routed under, so a cutover can fence stale routing the
// way membership epochs fence stale replicas (shard::ShardedCluster
// re-routes or aborts-and-retries a stale-stamped transaction).
//
// The map round-trips through util::Json so deployments can ship it as a
// config artifact. from_json is strict: overlapping or non-covering range
// sets, out-of-range owners, a version below 1, or mistyped fields are
// rejected with nullopt — a malformed artifact must never load into a
// router (the constructor CHECK-fails on the same violations, for callers
// that build maps programmatically).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace vrep::shard {

using ShardId = std::uint32_t;

// splitmix64: cheap, well-mixed 64-bit hash for routing keys.
inline std::uint64_t hash_key(std::uint64_t key) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class ShardMap {
 public:
  struct Range {
    std::uint64_t upper = 0;  // inclusive upper bound of the hash range
    ShardId owner = 0;
    bool operator==(const Range& other) const {
      return upper == other.upper && owner == other.owner;
    }
  };

  // N equal hash ranges, version 1, range i owned by shard i ("shard-<i>").
  static ShardMap uniform(unsigned num_shards);

  // Explicit bounds (strictly ascending, last == 2^64-1); range i owned by
  // shard i; one name per shard (empty vector = default names).
  ShardMap(std::vector<std::uint64_t> upper_bounds, std::uint64_t version,
           std::vector<std::string> names = {});

  // Fully explicit form: ranges with owners, one name per shard. A shard
  // may own zero ranges (drained by merged_out) but every owner must name
  // an existing shard.
  ShardMap(std::vector<Range> ranges, std::uint64_t version,
           std::vector<std::string> names);

  ShardId shard_of(std::uint64_t hash) const;
  unsigned num_shards() const { return static_cast<unsigned>(names_.size()); }
  std::size_t num_ranges() const { return ranges_.size(); }
  std::uint64_t version() const { return version_; }
  // Range-indexed accessors (for a uniform map, range index == shard id).
  std::uint64_t upper_bound(std::size_t range) const { return ranges_.at(range).upper; }
  ShardId owner(std::size_t range) const { return ranges_.at(range).owner; }
  const std::string& name(ShardId shard) const { return names_.at(shard); }
  // Number of ranges `shard` owns; 0 = drained (no new traffic routes to it).
  std::size_t ranges_owned(ShardId shard) const;

  bool operator==(const ShardMap& other) const {
    return version_ == other.version_ && ranges_ == other.ranges_ && names_ == other.names_;
  }

  // ---- reconfiguration (pure: the receiver is never modified) -------------
  // Split the range containing `at_hash` at it: the lower half (lo, at_hash]
  // keeps its owner, the upper half (at_hash, hi] goes to a NEW shard
  // (id == num_shards()) named `name` (empty = "shard-<id>"). Version + 1.
  // CHECKs that at_hash is strictly inside its range (both halves non-empty).
  ShardMap split(std::uint64_t at_hash, std::string name = {}) const;
  // Hand every range `victim` owns to its neighbor (the preceding surviving
  // range's owner; the following one for a leading range), coalescing
  // adjacent same-owner ranges. The victim shard keeps its id and name but
  // owns nothing — drained, ready for decommission. Version + 1. CHECKs that
  // the victim owns at least one range but not all of them.
  ShardMap merged_out(ShardId victim) const;

  // nullptr when the triple forms a valid map, else a human-readable reason
  // (non-covering, overlap, bad owner, bad version...). The constructors
  // CHECK this; from_json turns a violation into nullopt.
  static const char* validate(const std::vector<Range>& ranges, std::uint64_t version,
                              std::size_t num_shards);

  Json to_json() const;
  static std::optional<ShardMap> from_json(const Json& json);

 private:
  std::vector<Range> ranges_;  // sorted by upper bound, covering the space
  std::vector<std::string> names_;  // one per shard (owner ids index this)
  std::uint64_t version_ = 1;
};

// Key -> owning shard, through the map's hash ranges. Carries the map
// version so a routing decision can be checked against a reconfigured map.
// Holds a pointer: a Router over a cluster's live map observes an in-place
// cutover on its next route() call (the per-txn re-read).
class Router {
 public:
  explicit Router(const ShardMap& map) : map_(&map) {}

  ShardId route(std::uint64_t key) const { return map_->shard_of(hash_key(key)); }
  std::uint64_t map_version() const { return map_->version(); }

 private:
  const ShardMap* map_;
};

}  // namespace vrep::shard
