// A partitioned multi-primary cluster: N shards, each owning a slice of the
// hash space (shard/shard_map.hpp), its own database region, its own
// repl::RedoPipeline with a private backup set, and its own
// cluster::Membership epoch — a takeover on one shard fences nothing on
// another. Cross-shard Debit-Credit transactions (the remote-branch mix)
// commit through shard::CrossShardCoordinator's 2PC over the per-shard
// pipelines.
//
// Replication runs over a deterministic inline-delivery loopback carrier:
// send() hands the frame straight to the backup's RedoApplier and queues
// the applier's responses for the pipeline's next recv(). Everything —
// prepares, decides, acks, rejoins, takeovers — is therefore synchronous
// and reproducible from the seed, which is what lets the conformance tests
// compare surviving replica CRCs against an independently-replayed oracle.
//
// Per-shard database layout:
//
//   [ Debit-Credit records + audit ring  |  decision ring (16 B slots) ]
//    `workload_bytes()` bytes               decision_slots * 16 bytes
//
// The decision ring belongs to the HOME shard of a cross-shard transaction
// and is written by the coordinator as part of the home commit, so the
// decision replicates exactly like any other byte (shard/decision_log.hpp
// has the resolution rule).
//
// Chaos: kill_primary() drops a shard's primary mid-load; promote() elects
// backup 0, resolves every buffered in-doubt transaction against the home
// shards' decision records, re-fences the epoch, and re-adopts the
// surviving backups through the ordinary rejoin protocol. The other shards
// never stop committing.
//
// Online reconfiguration (shard/rebalancer.hpp drives it):
//   * Range migration. A staged target map deems record (kind, i) owned by
//     shard_of(hash_key(record_key(kind, i))); every record whose owner
//     changes between the live and staged maps is in the MOVING SET. The
//     rebalancer streams those balances source -> destination in bounded
//     chunks, each chunk one ordinary cross-shard 2PC transaction homed on
//     the source (add to destination, zero at source), while both shards
//     keep committing. Commits that land on an already-transferred record
//     mark it dirty (note_write) — the dual-write window — and the residual
//     is re-transferred until a fenced cutover finds nothing dirty under
//     every latch and publishes the target map.
//   * Planned primary handoff. handoff_primary() quiesces a shard (drain
//     every peer to the full shipped watermark, zero in-doubt), promotes
//     backup 0 with the epoch bump, and demotes the old primary to a
//     seeded backup that rejoins by empty delta — no txn resolves through
//     the takeover path and no full image is shipped.
//   * Reconfigurable 2PC. Every planned decision is stamped with the map
//     version it routed under; execute() re-routes a stale-stamped decision
//     against the live map before latching (abort-and-retry against the new
//     layout), so a migration can never dual-apply a prepare on both the
//     source and the destination.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/latch.hpp"
#include "shard/coordinator.hpp"
#include "shard/shard_map.hpp"
#include "util/rng.hpp"
#include "workload/debit_credit.hpp"

namespace vrep::shard {

class Rebalancer;

struct ShardedConfig {
  unsigned shards = 3;
  unsigned backups_per_shard = 1;
  // Per-shard database region: workload records below, decision ring tail.
  std::size_t shard_db_size = 256u << 10;
  std::size_t decision_slots = 64;
  bool two_safe = true;
  unsigned quorum = 1;
  std::size_t redo_history_bytes = 1u << 20;
};

// One transaction's routing decision + randomized picks. `plan` indexes are
// shard-local: the account lives on `remote` when `cross`, everything else
// on `home`. `key` is the routed client key and `map_version` the map it
// routed under, so a reconfiguration can detect (and re-route) a decision
// planned against a superseded layout; map_version 0 marks a legacy
// unstamped decision that is executed as planned.
struct TxnDecision {
  bool cross = false;
  ShardId home = 0;
  ShardId remote = 0;  // valid when cross
  std::uint64_t key = 0;
  std::uint64_t map_version = 0;
  wl::DebitCredit::TxnPlan plan{};
};

// Draw one transaction: route a random key to its home shard, apply the
// remote-branch mix, then draw the workload plan. Deterministic in the Rng,
// and shared by the cluster's driver and the test oracle so both see the
// same history.
TxnDecision plan_txn(const Router& router, const wl::DebitCredit& workload,
                     unsigned num_shards, Rng& rng, double remote_fraction);

// Deterministic chaos: kill one shard's primary mid-load.
struct ChaosSchedule {
  // 0 = no kill. Otherwise the kill fires at the first eligible transaction
  // index >= this (1-based): any transaction for kBetweenTxns, the first
  // cross-shard one for the 2PC points.
  std::uint64_t kill_after_txn = 0;
  enum class Point : std::uint8_t { kBetweenTxns, kAfterPrepare, kAfterHomeCommit };
  Point point = Point::kBetweenTxns;
  enum class Target : std::uint8_t { kFixedShard, kHomeShard, kRemoteShard };
  Target target = Target::kFixedShard;
  ShardId shard = 0;  // kFixedShard's victim
};

// One scripted reconfiguration op, fired just before the 1-based
// transaction index `at_txn` (ops that come due while a migration is still
// active are deferred until after its cutover; the event log records when
// they actually fired).
struct RebalanceOp {
  enum class Kind : std::uint8_t { kSplit, kMerge, kHandoff, kAddBackup };
  Kind kind = Kind::kSplit;
  std::uint64_t at_txn = 0;
  // kSplit: the shard whose range is split; kMerge: the drained victim;
  // kHandoff / kAddBackup: the target shard.
  ShardId shard = 0;
  std::uint64_t at_hash = 0;  // kSplit point (0 = midpoint of its first range)
};

struct RebalanceScript {
  std::vector<RebalanceOp> ops;
  std::size_t chunk_records = 64;  // records per migration chunk (2PC txn)
  unsigned steps_per_txn = 1;      // migration chunks attempted per txn
};

// What actually happened and when, so an oracle can replay the exact
// reconfiguration history: kBegin carries the op with its resolved split
// hash, kCutover marks the map-version flip.
struct RebalanceEvent {
  enum class Kind : std::uint8_t { kBegin, kCutover, kHandoff, kAddBackup };
  Kind kind = Kind::kBegin;
  std::uint64_t at_txn = 0;  // fired before this txn (txns+1 = after the run)
  RebalanceOp op{};          // originating op (resolved); kCutover: its begin op
  std::uint64_t map_version = 0;  // live map version after the event
  unsigned num_shards = 0;        // cluster size after the event
};

class ShardedCluster {
 public:
  explicit ShardedCluster(const ShardedConfig& config);
  ~ShardedCluster();
  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  struct TxnOutcome {
    bool cross = false;
    bool committed = false;
    bool prepared = false;  // phase 1 ran (an aborted prepare still burns a seq)
    ShardId home = 0;
    ShardId remote = 0;
    std::uint64_t xid = 0;
    std::uint64_t home_seq = 0;
    std::uint64_t remote_seq = 0;
    std::uint64_t map_version = 0;  // map the txn actually executed under
  };
  struct RunResult {
    std::uint64_t committed = 0;
    std::uint64_t cross_committed = 0;
    std::uint64_t chaos_aborted = 0;  // cross txns aborted by the kill
    std::uint64_t takeovers = 0;
    std::vector<TxnOutcome> trace;  // one entry per transaction, in order
    std::vector<RebalanceEvent> events;  // reconfigurations, in firing order
  };

  // Deterministic single-threaded load: `txns` transactions drawn from
  // `seed`, a `remote_fraction` of them cross-shard, with an optional
  // primary kill and an optional reconfiguration script threaded through
  // the stream (any migration still active after the last txn is run to
  // completion; its events log at txns+1). The trace + events let an oracle
  // replay the exact history.
  RunResult run(std::uint64_t seed, std::uint64_t txns, double remote_fraction,
                const ChaosSchedule& chaos = ChaosSchedule{},
                const RebalanceScript& script = RebalanceScript{});

  // Thread-safe execution of one planned transaction (the concurrency
  // hammer): the touched shards are latched in id order. A decision stamped
  // with a superseded map_version is first re-routed against the live map —
  // the plan aborts against the old layout and retries against the new one
  // in one step (counted in rebalance.retried_2pc when the home moved).
  // Returns committed.
  bool execute(const TxnDecision& decision);

  // ---- geometry -----------------------------------------------------------
  // Reads the published shard count (grows at migration begin; safe to call
  // concurrently with add_shard).
  unsigned num_shards() const { return live_shards_.load(std::memory_order_acquire); }
  const ShardMap& map() const { return map_; }
  const wl::DebitCredit& workload() const { return workload_; }
  // Bytes below the decision ring (the oracle-comparable region).
  std::size_t workload_bytes() const { return workload_bytes_; }
  std::size_t shard_db_size() const { return config_.shard_db_size; }

  // The key under which record (kind, i) is deemed owned by a shard:
  // kind 0 = account, 1 = teller, 2 = branch. Shared verbatim with the
  // test oracle so both sides compute identical moving sets.
  static std::uint64_t record_key(unsigned kind, std::uint64_t index) {
    return (static_cast<std::uint64_t>(kind + 1) << 40) ^ index;
  }

  // ---- inspection (quiesced) ---------------------------------------------
  const std::uint8_t* primary_db(ShardId id) const;
  std::uint64_t shard_committed(ShardId id) const;
  std::uint64_t shard_epoch(ShardId id) const;
  std::size_t backup_count(ShardId id) const;
  const std::uint8_t* backup_db(ShardId id, std::size_t backup) const;
  std::uint64_t backup_applied(ShardId id, std::size_t backup) const;
  // Prepared-but-undecided transactions still buffered anywhere on a shard
  // (primary pipeline + every backup applier). 0 after a completed run.
  std::size_t in_doubt(ShardId id) const;
  // Full-sync rejoins this shard's pipeline has ever served (a planned
  // handoff must stay at 0: the demoted primary rejoins by empty delta).
  std::uint64_t full_syncs_served(ShardId id) const;

  // Workload-region CRC of the shard's primary image.
  std::uint32_t shard_crc(ShardId id) const;
  // Every replica of `id` caught up and byte-identical to the primary over
  // the full region (empty string = converged).
  std::string check_replicas(ShardId id) const;
  // The global invariant: account/teller/branch balance sums, each totalled
  // across all shards, are equal (empty string = consistent).
  std::string check_global_consistency() const;

  // ---- planned reconfiguration (no kill anywhere) -------------------------
  // Grow the cluster by one shard (fresh db + backups_per_shard backups,
  // seeded and replicating) without touching the live map — traffic reaches
  // it only once a migration cutover routes a range there. Returns its id.
  ShardId add_shard();
  // Swap a shard's primary for backup 0 with zero loss and zero takeover-
  // path resolutions: drain every peer to the full shipped watermark, CHECK
  // nothing is in doubt and every backup is at the committed sequence, then
  // promote; the demoted primary rejoins as a backup via an empty delta.
  void handoff_primary(ShardId id);
  // Grow a shard's backup set under traffic: the new backup full-syncs (it
  // has no state — that cost is honest) and then rides the stream.
  void add_backup(ShardId id);

  struct RebalanceCounters {
    std::uint64_t bytes_moved = 0;       // balance payload shipped to destinations
    std::uint64_t records_moved = 0;     // nonzero balances transferred (incl. re-transfers)
    std::uint64_t chunks = 0;            // migration 2PC transactions committed
    std::uint64_t retried_2pc = 0;       // stale-map decisions re-routed by execute()
    std::uint64_t cutover_stall_ns = 0;  // wall time holding every latch at cutovers
    std::uint64_t cutovers = 0;
    std::uint64_t handoffs = 0;          // planned primary handoffs completed
    std::uint64_t backup_adds = 0;
  };
  RebalanceCounters rebalance_counters() const;

  // ---- chaos + audit ------------------------------------------------------
  // Drop a shard's primary (links die, image is lost) and promote backup 0:
  // resolve in-doubt against the decision records, re-fence, re-adopt the
  // surviving backups. CHECKs the shard has a backup to promote.
  void kill_primary(ShardId id);

  std::uint64_t takeovers() const { return takeovers_; }
  // Every in-doubt resolution performed anywhere (coordinator decides and
  // takeover resolutions), xid -> committed. A transaction resolved both
  // ways would bump resolution_conflicts() — the invariant is 0.
  const std::map<std::uint64_t, bool>& resolutions() const { return resolutions_; }
  std::uint64_t resolution_conflicts() const { return resolution_conflicts_; }

  CrossShardCoordinator& coordinator() { return *coordinator_; }

 private:
  friend class Rebalancer;

  struct Shard;

  // Live migration bookkeeping (null when no migration is staged). `moves`
  // enumerates the moving set; per-move `transferred`/`dirty` bytes are each
  // guarded by the SOURCE shard's latch (note_write and the chunk write
  // generators both run under it); the pointer itself is published and
  // retired under every shard latch, so any latch holder reads it safely.
  struct Migration {
    struct Move {
      ShardId src = 0;
      ShardId dst = 0;
      std::uint64_t off = 0;  // record base offset (same layout on every shard)
    };
    ShardMap target;
    std::vector<Move> moves;
    std::vector<std::uint8_t> transferred;  // value landed on dst at least once
    std::vector<std::uint8_t> dirty;        // src re-bumped after transfer
    std::unordered_map<std::uint64_t, std::size_t> by_off;  // move_key -> index
    Migration(ShardMap t, std::vector<Move> m);
  };
  static std::uint64_t move_key(ShardId shard, std::uint64_t off) {
    return (static_cast<std::uint64_t>(shard) << 48) | off;
  }

  std::unique_ptr<Shard> build_shard(ShardId id);
  TxnOutcome run_one(const TxnDecision& decision, const CrossShardCoordinator::ChaosHook& chaos);
  // Returns the commit sequence, read under the shard latch — callers must
  // not touch shard.committed once the latch is released.
  std::uint64_t run_local(Shard& shard, const wl::DebitCredit::TxnPlan& plan);
  CrossShardCoordinator::Participant participant(Shard& shard);
  // Id-based access for the Rebalancer (Shard is an implementation type).
  // shard_db_ptr must be read under the shard's latch: a promotion swaps
  // the backing image.
  core::Latch& shard_latch(ShardId id);
  const std::uint8_t* shard_db_ptr(ShardId id) const;
  CrossShardCoordinator::Participant shard_participant(ShardId id);
  void promote(Shard& shard);
  void readopt_backups(Shard& shard);
  bool decide_in_doubt(std::uint64_t xid) const;
  void record_resolution(std::uint64_t xid, bool commit);
  // Dual-write tracking: callers hold `shard`'s latch; marks an already-
  // transferred moving record dirty so the migration re-ships its residual.
  void note_write(ShardId shard, std::uint64_t off);
  // Re-route a decision stamped with a superseded map version against the
  // live map (under map_mu_). Returns the decision to execute.
  TxnDecision reroute_stale(const TxnDecision& decision);

  ShardedConfig config_;
  std::size_t workload_bytes_;
  ShardMap map_;
  wl::DebitCredit workload_;
  std::unique_ptr<CrossShardCoordinator> coordinator_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<unsigned> live_shards_{0};  // published size of shards_
  // Guards map_ reads/writes across threads; always acquired either alone
  // or AFTER shard latches (cutover), never before them.
  mutable std::mutex map_mu_;
  std::unique_ptr<Migration> migration_;
  std::mutex audit_mu_;
  std::map<std::uint64_t, bool> resolutions_;
  std::uint64_t resolution_conflicts_ = 0;
  std::uint64_t takeovers_ = 0;
  // shard.rebalance.* counters (relaxed: monotone tallies, read quiesced).
  std::atomic<std::uint64_t> rb_bytes_moved_{0};
  std::atomic<std::uint64_t> rb_records_moved_{0};
  std::atomic<std::uint64_t> rb_chunks_{0};
  std::atomic<std::uint64_t> rb_retried_2pc_{0};
  std::atomic<std::uint64_t> rb_cutover_stall_ns_{0};
  std::atomic<std::uint64_t> rb_cutovers_{0};
  std::atomic<std::uint64_t> rb_handoffs_{0};
  std::atomic<std::uint64_t> rb_backup_adds_{0};
};

}  // namespace vrep::shard
