// A partitioned multi-primary cluster: N shards, each owning a slice of the
// hash space (shard/shard_map.hpp), its own database region, its own
// repl::RedoPipeline with a private backup set, and its own
// cluster::Membership epoch — a takeover on one shard fences nothing on
// another. Cross-shard Debit-Credit transactions (the remote-branch mix)
// commit through shard::CrossShardCoordinator's 2PC over the per-shard
// pipelines.
//
// Replication runs over a deterministic inline-delivery loopback carrier:
// send() hands the frame straight to the backup's RedoApplier and queues
// the applier's responses for the pipeline's next recv(). Everything —
// prepares, decides, acks, rejoins, takeovers — is therefore synchronous
// and reproducible from the seed, which is what lets the conformance tests
// compare surviving replica CRCs against an independently-replayed oracle.
//
// Per-shard database layout:
//
//   [ Debit-Credit records + audit ring  |  decision ring (16 B slots) ]
//    `workload_bytes()` bytes               decision_slots * 16 bytes
//
// The decision ring belongs to the HOME shard of a cross-shard transaction
// and is written by the coordinator as part of the home commit, so the
// decision replicates exactly like any other byte (shard/decision_log.hpp
// has the resolution rule).
//
// Chaos: kill_primary() drops a shard's primary mid-load; promote() elects
// backup 0, resolves every buffered in-doubt transaction against the home
// shards' decision records, re-fences the epoch, and re-adopts the
// surviving backups through the ordinary rejoin protocol. The other shards
// never stop committing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "shard/coordinator.hpp"
#include "shard/shard_map.hpp"
#include "util/rng.hpp"
#include "workload/debit_credit.hpp"

namespace vrep::shard {

struct ShardedConfig {
  unsigned shards = 3;
  unsigned backups_per_shard = 1;
  // Per-shard database region: workload records below, decision ring tail.
  std::size_t shard_db_size = 256u << 10;
  std::size_t decision_slots = 64;
  bool two_safe = true;
  unsigned quorum = 1;
  std::size_t redo_history_bytes = 1u << 20;
};

// One transaction's routing decision + randomized picks. `plan` indexes are
// shard-local: the account lives on `remote` when `cross`, everything else
// on `home`.
struct TxnDecision {
  bool cross = false;
  ShardId home = 0;
  ShardId remote = 0;  // valid when cross
  wl::DebitCredit::TxnPlan plan{};
};

// Draw one transaction: route a random key to its home shard, apply the
// remote-branch mix, then draw the workload plan. Deterministic in the Rng,
// and shared by the cluster's driver and the test oracle so both see the
// same history.
TxnDecision plan_txn(const Router& router, const wl::DebitCredit& workload,
                     unsigned num_shards, Rng& rng, double remote_fraction);

// Deterministic chaos: kill one shard's primary mid-load.
struct ChaosSchedule {
  // 0 = no kill. Otherwise the kill fires at the first eligible transaction
  // index >= this (1-based): any transaction for kBetweenTxns, the first
  // cross-shard one for the 2PC points.
  std::uint64_t kill_after_txn = 0;
  enum class Point : std::uint8_t { kBetweenTxns, kAfterPrepare, kAfterHomeCommit };
  Point point = Point::kBetweenTxns;
  enum class Target : std::uint8_t { kFixedShard, kHomeShard, kRemoteShard };
  Target target = Target::kFixedShard;
  ShardId shard = 0;  // kFixedShard's victim
};

class ShardedCluster {
 public:
  explicit ShardedCluster(const ShardedConfig& config);
  ~ShardedCluster();
  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  struct TxnOutcome {
    bool cross = false;
    bool committed = false;
    bool prepared = false;  // phase 1 ran (an aborted prepare still burns a seq)
    ShardId home = 0;
    ShardId remote = 0;
    std::uint64_t xid = 0;
    std::uint64_t home_seq = 0;
    std::uint64_t remote_seq = 0;
  };
  struct RunResult {
    std::uint64_t committed = 0;
    std::uint64_t cross_committed = 0;
    std::uint64_t chaos_aborted = 0;  // cross txns aborted by the kill
    std::uint64_t takeovers = 0;
    std::vector<TxnOutcome> trace;  // one entry per transaction, in order
  };

  // Deterministic single-threaded load: `txns` transactions drawn from
  // `seed`, a `remote_fraction` of them cross-shard, with an optional
  // primary kill. The trace lets an oracle replay the exact history.
  RunResult run(std::uint64_t seed, std::uint64_t txns, double remote_fraction,
                const ChaosSchedule& chaos = ChaosSchedule{});

  // Thread-safe execution of one planned transaction (the concurrency
  // hammer): the touched shards are latched in id order. Returns committed.
  bool execute(const TxnDecision& decision);

  // ---- geometry -----------------------------------------------------------
  unsigned num_shards() const { return static_cast<unsigned>(shards_.size()); }
  const ShardMap& map() const { return map_; }
  const wl::DebitCredit& workload() const { return workload_; }
  // Bytes below the decision ring (the oracle-comparable region).
  std::size_t workload_bytes() const { return workload_bytes_; }
  std::size_t shard_db_size() const { return config_.shard_db_size; }

  // ---- inspection (quiesced) ---------------------------------------------
  const std::uint8_t* primary_db(ShardId id) const;
  std::uint64_t shard_committed(ShardId id) const;
  std::uint64_t shard_epoch(ShardId id) const;
  std::size_t backup_count(ShardId id) const;
  const std::uint8_t* backup_db(ShardId id, std::size_t backup) const;
  std::uint64_t backup_applied(ShardId id, std::size_t backup) const;
  // Prepared-but-undecided transactions still buffered anywhere on a shard
  // (primary pipeline + every backup applier). 0 after a completed run.
  std::size_t in_doubt(ShardId id) const;

  // Workload-region CRC of the shard's primary image.
  std::uint32_t shard_crc(ShardId id) const;
  // Every replica of `id` caught up and byte-identical to the primary over
  // the full region (empty string = converged).
  std::string check_replicas(ShardId id) const;
  // The global invariant: account/teller/branch balance sums, each totalled
  // across all shards, are equal (empty string = consistent).
  std::string check_global_consistency() const;

  // ---- chaos + audit ------------------------------------------------------
  // Drop a shard's primary (links die, image is lost) and promote backup 0:
  // resolve in-doubt against the decision records, re-fence, re-adopt the
  // surviving backups. CHECKs the shard has a backup to promote.
  void kill_primary(ShardId id);

  std::uint64_t takeovers() const { return takeovers_; }
  // Every in-doubt resolution performed anywhere (coordinator decides and
  // takeover resolutions), xid -> committed. A transaction resolved both
  // ways would bump resolution_conflicts() — the invariant is 0.
  const std::map<std::uint64_t, bool>& resolutions() const { return resolutions_; }
  std::uint64_t resolution_conflicts() const { return resolution_conflicts_; }

  CrossShardCoordinator& coordinator() { return *coordinator_; }

 private:
  struct Shard;

  TxnOutcome run_one(const TxnDecision& decision, const CrossShardCoordinator::ChaosHook& chaos);
  // Returns the commit sequence, read under the shard latch — callers must
  // not touch shard.committed once the latch is released.
  std::uint64_t run_local(Shard& shard, const wl::DebitCredit::TxnPlan& plan);
  CrossShardCoordinator::Participant participant(Shard& shard);
  void promote(Shard& shard);
  bool decide_in_doubt(std::uint64_t xid) const;
  void record_resolution(std::uint64_t xid, bool commit);

  ShardedConfig config_;
  std::size_t workload_bytes_;
  ShardMap map_;
  wl::DebitCredit workload_;
  std::unique_ptr<CrossShardCoordinator> coordinator_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex audit_mu_;
  std::map<std::uint64_t, bool> resolutions_;
  std::uint64_t resolution_conflicts_ = 0;
  std::uint64_t takeovers_ = 0;
};

}  // namespace vrep::shard
