#include "shard/shard_map.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace vrep::shard {

namespace {
constexpr std::uint64_t kHashMax = std::numeric_limits<std::uint64_t>::max();
}  // namespace

ShardMap ShardMap::uniform(unsigned num_shards) {
  VREP_CHECK(num_shards >= 1);
  std::vector<std::uint64_t> upper(num_shards);
  // Equal slices of the hash space; the last bound absorbs the remainder.
  const std::uint64_t stride = kHashMax / num_shards;
  for (unsigned i = 0; i + 1 < num_shards; ++i) {
    upper[i] = stride * (i + 1);
  }
  upper[num_shards - 1] = kHashMax;
  return ShardMap(std::move(upper), /*version=*/1);
}

ShardMap::ShardMap(std::vector<std::uint64_t> upper_bounds, std::uint64_t version,
                   std::vector<std::string> names)
    : upper_(std::move(upper_bounds)), names_(std::move(names)), version_(version) {
  VREP_CHECK(!upper_.empty());
  VREP_CHECK(upper_.back() == kHashMax);  // total coverage of the hash space
  for (std::size_t i = 1; i < upper_.size(); ++i) {
    VREP_CHECK(upper_[i - 1] < upper_[i]);  // strictly ascending, no empty range
  }
  VREP_CHECK(version_ >= 1);
  if (names_.empty()) {
    names_.reserve(upper_.size());
    for (std::size_t i = 0; i < upper_.size(); ++i) {
      names_.push_back("shard-" + std::to_string(i));
    }
  }
  VREP_CHECK(names_.size() == upper_.size());
}

ShardId ShardMap::shard_of(std::uint64_t hash) const {
  const auto it = std::lower_bound(upper_.begin(), upper_.end(), hash);
  return static_cast<ShardId>(it - upper_.begin());
}

Json ShardMap::to_json() const {
  Json root = Json::object();
  root.set("version", Json(version_));
  Json shards = Json::array();
  for (std::size_t i = 0; i < upper_.size(); ++i) {
    Json entry = Json::object();
    entry.set("id", Json(static_cast<std::uint64_t>(i)));
    entry.set("name", Json(names_[i]));
    entry.set("upper", Json(upper_[i]));
    shards.push(std::move(entry));
  }
  root.set("shards", std::move(shards));
  return root;
}

std::optional<ShardMap> ShardMap::from_json(const Json& json) {
  const Json* version = json.find("version");
  const Json* shards = json.find("shards");
  if (version == nullptr || shards == nullptr || !shards->is_array() ||
      shards->size() == 0) {
    return std::nullopt;
  }
  std::vector<std::uint64_t> upper;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < shards->size(); ++i) {
    const Json& entry = shards->at(i);
    const Json* id = entry.find("id");
    const Json* name = entry.find("name");
    const Json* bound = entry.find("upper");
    if (id == nullptr || name == nullptr || bound == nullptr || id->u64() != i) {
      return std::nullopt;
    }
    upper.push_back(bound->u64());
    names.push_back(name->str());
  }
  if (upper.back() != kHashMax) return std::nullopt;
  for (std::size_t i = 1; i < upper.size(); ++i) {
    if (upper[i - 1] >= upper[i]) return std::nullopt;
  }
  return ShardMap(std::move(upper), version->u64(), std::move(names));
}

}  // namespace vrep::shard
