#include "shard/shard_map.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace vrep::shard {

namespace {
constexpr std::uint64_t kHashMax = std::numeric_limits<std::uint64_t>::max();

std::string default_name(std::size_t i) { return "shard-" + std::to_string(i); }

// Merge adjacent ranges with the same owner into one (keeps the map minimal
// after merged_out hands a victim's ranges to an already-adjacent owner).
std::vector<ShardMap::Range> coalesce(std::vector<ShardMap::Range> ranges) {
  std::vector<ShardMap::Range> out;
  out.reserve(ranges.size());
  for (const auto& r : ranges) {
    if (!out.empty() && out.back().owner == r.owner) {
      out.back().upper = r.upper;
    } else {
      out.push_back(r);
    }
  }
  return out;
}
}  // namespace

const char* ShardMap::validate(const std::vector<Range>& ranges, std::uint64_t version,
                               std::size_t num_shards) {
  if (version < 1) return "map version must be >= 1";
  if (num_shards == 0) return "map must name at least one shard";
  if (ranges.empty()) return "map must have at least one range";
  if (ranges.back().upper != kHashMax) {
    return "ranges do not cover the hash space (last upper != 2^64-1)";
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i > 0 && ranges[i].upper <= ranges[i - 1].upper) {
      return "ranges overlap or are unsorted (uppers must be strictly ascending)";
    }
    if (ranges[i].owner >= num_shards) return "range owner is not a known shard";
  }
  return nullptr;
}

ShardMap ShardMap::uniform(unsigned num_shards) {
  VREP_CHECK(num_shards >= 1);
  std::vector<std::uint64_t> upper(num_shards);
  // Equal slices of the hash space; the last bound absorbs the remainder.
  const std::uint64_t stride = kHashMax / num_shards;
  for (unsigned i = 0; i + 1 < num_shards; ++i) {
    upper[i] = stride * (i + 1);
  }
  upper[num_shards - 1] = kHashMax;
  return ShardMap(std::move(upper), /*version=*/1);
}

ShardMap::ShardMap(std::vector<std::uint64_t> upper_bounds, std::uint64_t version,
                   std::vector<std::string> names)
    : names_(std::move(names)), version_(version) {
  ranges_.reserve(upper_bounds.size());
  for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
    ranges_.push_back(Range{upper_bounds[i], static_cast<ShardId>(i)});
  }
  if (names_.empty()) {
    names_.reserve(ranges_.size());
    for (std::size_t i = 0; i < ranges_.size(); ++i) names_.push_back(default_name(i));
  }
  VREP_CHECK(names_.size() == ranges_.size());
  const char* err = validate(ranges_, version_, names_.size());
  if (err != nullptr) {
    check_failed(err, __FILE__, __LINE__);
  }
}

ShardMap::ShardMap(std::vector<Range> ranges, std::uint64_t version,
                   std::vector<std::string> names)
    : ranges_(std::move(ranges)), names_(std::move(names)), version_(version) {
  const char* err = validate(ranges_, version_, names_.size());
  if (err != nullptr) {
    check_failed(err, __FILE__, __LINE__);
  }
}

ShardId ShardMap::shard_of(std::uint64_t hash) const {
  const auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), hash,
      [](const Range& r, std::uint64_t h) { return r.upper < h; });
  return it->owner;  // last upper is 2^64-1, so `it` is always valid
}

std::size_t ShardMap::ranges_owned(ShardId shard) const {
  std::size_t n = 0;
  for (const auto& r : ranges_) n += (r.owner == shard) ? 1 : 0;
  return n;
}

ShardMap ShardMap::split(std::uint64_t at_hash, std::string name) const {
  const ShardId fresh = static_cast<ShardId>(num_shards());
  std::vector<Range> next;
  next.reserve(ranges_.size() + 1);
  bool placed = false;
  std::uint64_t lower = 0;  // range i covers (lower, upper]; lower of range 0 is -1 conceptually
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    const Range& r = ranges_[i];
    const bool contains = (i == 0) ? (at_hash <= r.upper) : (at_hash > lower && at_hash <= r.upper);
    if (!placed && contains) {
      // Both halves must be non-empty: (lower, at] and (at, upper].
      VREP_CHECK(at_hash < r.upper);
      next.push_back(Range{at_hash, r.owner});
      next.push_back(Range{r.upper, fresh});
      placed = true;
    } else {
      next.push_back(r);
    }
    lower = r.upper;
  }
  VREP_CHECK(placed);
  std::vector<std::string> names = names_;
  names.push_back(name.empty() ? default_name(fresh) : std::move(name));
  return ShardMap(std::move(next), version_ + 1, std::move(names));
}

ShardMap ShardMap::merged_out(ShardId victim) const {
  VREP_CHECK(victim < num_shards());
  const std::size_t owned = ranges_owned(victim);
  VREP_CHECK(owned > 0);            // victim must have something to hand off
  VREP_CHECK(owned < ranges_.size());  // and may not own the whole map
  std::vector<Range> next = ranges_;
  for (std::size_t i = 0; i < next.size(); ++i) {
    if (next[i].owner != victim) continue;
    // Prefer the nearest preceding survivor (extends its range rightward);
    // a leading victim range falls to the nearest following survivor.
    ShardId heir = victim;
    for (std::size_t j = i; j-- > 0;) {
      if (next[j].owner != victim) {
        heir = next[j].owner;
        break;
      }
    }
    if (heir == victim) {
      for (std::size_t j = i + 1; j < next.size(); ++j) {
        if (next[j].owner != victim) {
          heir = next[j].owner;
          break;
        }
      }
    }
    next[i].owner = heir;  // owned < total guarantees a survivor exists
  }
  return ShardMap(coalesce(std::move(next)), version_ + 1, names_);
}

Json ShardMap::to_json() const {
  Json root = Json::object();
  root.set("version", Json(version_));
  Json shards = Json::array();
  for (std::size_t i = 0; i < names_.size(); ++i) {
    Json entry = Json::object();
    entry.set("id", Json(static_cast<std::uint64_t>(i)));
    entry.set("name", Json(names_[i]));
    shards.push(std::move(entry));
  }
  root.set("shards", std::move(shards));
  Json ranges = Json::array();
  for (const auto& r : ranges_) {
    Json entry = Json::object();
    entry.set("upper", Json(r.upper));
    entry.set("owner", Json(static_cast<std::uint64_t>(r.owner)));
    ranges.push(std::move(entry));
  }
  root.set("ranges", std::move(ranges));
  return root;
}

std::optional<ShardMap> ShardMap::from_json(const Json& json) {
  // Strict decode: every field must exist with the right type BEFORE any
  // u64() coercion (Json::u64 silently truncates doubles and clamps
  // negatives, which previously let malformed maps slip through), and the
  // decoded triple must pass the same validate() the constructors enforce —
  // overlapping or non-covering range sets never load into a router.
  if (!json.is_object()) return std::nullopt;
  const Json* version = json.find("version");
  const Json* shards = json.find("shards");
  const Json* ranges = json.find("ranges");
  if (version == nullptr || !version->is_number() || version->number() < 1) {
    return std::nullopt;
  }
  if (shards == nullptr || !shards->is_array() || shards->size() == 0) {
    return std::nullopt;
  }
  if (ranges == nullptr || !ranges->is_array() || ranges->size() == 0) {
    return std::nullopt;
  }

  std::vector<std::string> names;
  for (std::size_t i = 0; i < shards->size(); ++i) {
    const Json& entry = shards->at(i);
    if (!entry.is_object()) return std::nullopt;
    const Json* id = entry.find("id");
    const Json* name = entry.find("name");
    if (id == nullptr || !id->is_number() || id->number() < 0 || id->u64() != i) {
      return std::nullopt;
    }
    if (name == nullptr || name->type() != Json::Type::kString) return std::nullopt;
    names.push_back(name->str());
  }

  std::vector<Range> decoded;
  for (std::size_t i = 0; i < ranges->size(); ++i) {
    const Json& entry = ranges->at(i);
    if (!entry.is_object()) return std::nullopt;
    const Json* upper = entry.find("upper");
    const Json* owner = entry.find("owner");
    if (upper == nullptr || !upper->is_number() || upper->number() < 0) {
      return std::nullopt;
    }
    if (owner == nullptr || !owner->is_number() || owner->number() < 0) {
      return std::nullopt;
    }
    decoded.push_back(Range{upper->u64(), static_cast<ShardId>(owner->u64())});
  }

  if (validate(decoded, version->u64(), names.size()) != nullptr) return std::nullopt;
  return ShardMap(std::move(decoded), version->u64(), std::move(names));
}

}  // namespace vrep::shard
