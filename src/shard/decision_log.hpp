// The cross-shard commit decision record (presumed-abort 2PC).
//
// A cross-shard transaction's decision rides the redo stream of its HOME
// shard as ordinary committed bytes: the coordinator stages a 16-byte slot
// write into the same batch as the home shard's balance updates, so the
// decision becomes durable (and, 2-safe, quorum-durable) through exactly
// the machinery that makes every other write durable — no separate log, no
// extra fsync-equivalent, and failover replays it for free.
//
// Slot format, at `base_off + (xid % slots) * 16` inside the home shard's
// database region (above the workload's records):
//
//   [u64 xid | u64 flags]      flags bit 0: committed
//
// Resolution rule (what a promoted backup applies to its buffered in-doubt
// transactions): a transaction is COMMITTED iff its home shard's slot holds
// its xid with the commit bit; anything else — zeroed slot, different xid —
// means the coordinator never reached its commit point, and the transaction
// is presumed aborted. This is sound because the coordinator writes the
// slot *before* sending any phase-2 decide, and 2-safe home commits make
// the slot quorum-durable before phase 2 starts — so "slot absent" proves
// no participant can have applied a commit.
//
// Ring reuse: slots recycle every `slots` transactions. That is safe as
// long as fewer than `slots` cross-shard transactions start between a
// prepare and its resolution — the coordinator is synchronous per home
// shard (holds the shard latches across both phases), so at most
// shards-many transactions are ever unresolved and a handful of slots
// suffice.
#pragma once

#include <cstdint>
#include <cstring>

#include "util/check.hpp"

namespace vrep::shard {

class DecisionLog {
 public:
  static constexpr std::size_t kSlotBytes = 16;
  static constexpr std::uint64_t kCommitted = 1;

  DecisionLog(std::uint64_t base_off, std::size_t slots) : base_off_(base_off), slots_(slots) {
    VREP_CHECK(slots_ >= 2);
  }

  std::uint64_t base_off() const { return base_off_; }
  std::size_t slots() const { return slots_; }
  std::size_t bytes() const { return slots_ * kSlotBytes; }
  std::uint64_t slot_off(std::uint64_t xid) const {
    return base_off_ + (xid % slots_) * kSlotBytes;
  }

  // Encode the commit record the coordinator stages into the home shard's
  // redo batch.
  static void encode_commit(std::uint8_t out[kSlotBytes], std::uint64_t xid) {
    std::memcpy(out, &xid, sizeof xid);
    const std::uint64_t flags = kCommitted;
    std::memcpy(out + 8, &flags, sizeof flags);
  }

  // The resolution rule, applied against the home shard's (surviving)
  // database image.
  bool committed(const std::uint8_t* home_db, std::uint64_t xid) const {
    const std::uint8_t* slot = home_db + slot_off(xid);
    std::uint64_t slot_xid = 0, flags = 0;
    std::memcpy(&slot_xid, slot, sizeof slot_xid);
    std::memcpy(&flags, slot + 8, sizeof flags);
    return slot_xid == xid && (flags & kCommitted) != 0;
  }

 private:
  std::uint64_t base_off_;
  std::size_t slots_;
};

}  // namespace vrep::shard
