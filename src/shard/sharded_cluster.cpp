#include "shard/sharded_cluster.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <limits>
#include <optional>

#include "cluster/membership.hpp"
#include "core/latch.hpp"
#include "repl/pipeline.hpp"
#include "shard/rebalancer.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"

namespace vrep::shard {

namespace {

// Headroom reserved for shards created by migrations after construction:
// shards_ never reallocates, so concurrent readers can index it while
// add_shard appends (the published count is live_shards_).
constexpr unsigned kMaxShardGrowth = 8;

// The deterministic inline-delivery loopback carrier: one object per
// (primary, backup) pair. send() delivers the frame to the applier
// synchronously; the applier's responses (acks, fences, rejoin requests)
// queue in `inbox_` for the pipeline's next recv(). kill() snaps the
// carrier the way a process death would: sends fail, recv reports closed.
class InlineLink final : public repl::ReplicationLink {
 public:
  explicit InlineLink(repl::RedoApplier* applier) : applier_(applier), reply_(this) {}

  void kill() { down_ = true; }
  // The backup -> primary direction (request_rejoin sends through this).
  repl::ReplicationLink& reply_link() { return reply_; }

  bool send(repl::FrameKind kind, std::uint64_t epoch, const void* payload,
            std::size_t len) override {
    if (down_) {
      err_ = repl::LinkError::kClosed;
      return false;
    }
    const auto* p = static_cast<const std::uint8_t*>(payload);
    repl::Frame frame{kind, epoch, std::vector<std::uint8_t>(p, p + len)};
    applier_->on_frame(frame, reply_);
    return true;
  }

  std::optional<repl::Frame> recv(int timeout_ms) override {
    (void)timeout_ms;  // inline delivery: either it is queued or it never will be
    if (!inbox_.empty()) {
      repl::Frame frame = std::move(inbox_.front());
      inbox_.pop_front();
      err_ = repl::LinkError::kNone;
      return frame;
    }
    err_ = down_ ? repl::LinkError::kClosed : repl::LinkError::kTimeout;
    return std::nullopt;
  }

  repl::LinkError last_error() const override { return err_; }
  bool connected() const override { return !down_; }

 private:
  struct Reply final : repl::ReplicationLink {
    explicit Reply(InlineLink* owner) : owner_(owner) {}
    bool send(repl::FrameKind kind, std::uint64_t epoch, const void* payload,
              std::size_t len) override {
      if (owner_->down_) return false;
      const auto* p = static_cast<const std::uint8_t*>(payload);
      owner_->inbox_.push_back(repl::Frame{kind, epoch, std::vector<std::uint8_t>(p, p + len)});
      return true;
    }
    std::optional<repl::Frame> recv(int) override { return std::nullopt; }
    repl::LinkError last_error() const override { return repl::LinkError::kTimeout; }
    bool connected() const override { return !owner_->down_; }

   private:
    InlineLink* owner_;
  };

  repl::RedoApplier* applier_;
  Reply reply_;
  std::deque<repl::Frame> inbox_;
  repl::LinkError err_ = repl::LinkError::kNone;
  bool down_ = false;
};

// Replica bytes land in a plain buffer.
struct BufferTarget final : repl::RedoApplier::Target {
  explicit BufferTarget(std::size_t size) : bytes(size, 0) {}
  void write(std::uint64_t off, const void* src, std::size_t len) override {
    VREP_CHECK(off + len <= bytes.size());
    std::memcpy(bytes.data() + off, src, len);
  }
  std::size_t capacity() const override { return bytes.size(); }
  const std::uint8_t* data() const override { return bytes.data(); }

  std::vector<std::uint8_t> bytes;
};

// Little-endian i32 balance update against a raw image.
std::vector<std::uint8_t> bumped_balance(const std::uint8_t* db, std::uint64_t off,
                                         std::int32_t amount) {
  std::int32_t balance;
  std::memcpy(&balance, db + off, sizeof balance);
  balance += amount;
  std::vector<std::uint8_t> bytes(sizeof balance);
  std::memcpy(bytes.data(), &balance, sizeof balance);
  return bytes;
}

}  // namespace

TxnDecision plan_txn(const Router& router, const wl::DebitCredit& workload,
                     unsigned num_shards, Rng& rng, double remote_fraction) {
  TxnDecision d;
  // The client's branch (the teller's node) picks the home shard; the
  // remote-branch rule then sends the account to a different shard.
  d.key = rng.next_u64();
  d.home = router.route(d.key);
  d.map_version = router.map_version();
  const bool want_remote =
      num_shards > 1 && wl::DebitCredit::draw_remote(rng, remote_fraction);
  d.plan = workload.plan_txn(rng);
  if (want_remote) {
    d.cross = true;
    const auto pick = static_cast<ShardId>(rng.below(num_shards - 1));
    d.remote = pick >= d.home ? pick + 1 : pick;
  } else {
    d.remote = d.home;
  }
  return d;
}

// ---------------------------------------------------------------------------
// Shard
// ---------------------------------------------------------------------------

struct ShardedCluster::Shard {
  struct Backup {
    explicit Backup(int node, std::size_t db_size)
        : node_id(node),
          target(db_size),
          membership(std::make_unique<cluster::Membership>(node, cluster::Role::kBackup)),
          applier(target, membership.get(), static_cast<std::uint64_t>(node)) {}

    int node_id;
    BufferTarget target;
    std::unique_ptr<cluster::Membership> membership;
    repl::RedoApplier applier;
    std::unique_ptr<InlineLink> link;  // primary-side endpoint
  };

  struct Src final : repl::RedoPipeline::Source {
    Shard* owner = nullptr;
    const std::uint8_t* db() const override { return owner->db.data(); }
    std::size_t db_size() const override { return owner->db.size(); }
    std::uint64_t committed_seq() const override { return owner->committed; }
  };

  ShardId id = 0;
  std::vector<std::uint8_t> db;
  std::uint64_t committed = 0;
  Src source;
  std::unique_ptr<cluster::Membership> membership;  // the acting primary's
  core::Latch latch;
  std::unique_ptr<repl::RedoPipeline> pipeline;
  std::vector<std::unique_ptr<Backup>> backups;
  bool primary_alive = true;
  int next_node = 1;  // next unused backup node id (never reused)
};

// ---------------------------------------------------------------------------
// Migration bookkeeping
// ---------------------------------------------------------------------------

ShardedCluster::Migration::Migration(ShardMap t, std::vector<Move> m)
    : target(std::move(t)),
      moves(std::move(m)),
      transferred(moves.size(), 0),
      dirty(moves.size(), 0) {
  by_off.reserve(moves.size());
  for (std::size_t i = 0; i < moves.size(); ++i) {
    by_off.emplace(move_key(moves[i].src, moves[i].off), i);
  }
}

void ShardedCluster::note_write(ShardId shard, std::uint64_t off) {
  // Caller holds `shard`'s latch. A bump on a record whose value already
  // landed on the destination leaves a residual at the source; marking it
  // dirty makes the migration re-ship exactly that residual.
  Migration* m = migration_.get();
  if (m == nullptr) return;
  const auto it = m->by_off.find(move_key(shard, off));
  if (it == m->by_off.end()) return;
  if (m->transferred[it->second] != 0) m->dirty[it->second] = 1;
}

// ---------------------------------------------------------------------------
// ShardedCluster
// ---------------------------------------------------------------------------

ShardedCluster::ShardedCluster(const ShardedConfig& config)
    : config_(config),
      workload_bytes_(config.shard_db_size - config.decision_slots * DecisionLog::kSlotBytes),
      map_(ShardMap::uniform(config.shards)),
      workload_(workload_bytes_) {
  VREP_CHECK(config_.shards >= 1);
  VREP_CHECK(config_.decision_slots >= 2);
  VREP_CHECK(workload_bytes_ > 0 && workload_bytes_ < config_.shard_db_size);
  coordinator_ = std::make_unique<CrossShardCoordinator>(
      DecisionLog(workload_bytes_, config_.decision_slots));

  shards_.reserve(config_.shards + kMaxShardGrowth);
  for (unsigned i = 0; i < config_.shards; ++i) {
    shards_.push_back(build_shard(i));
  }
  live_shards_.store(config_.shards, std::memory_order_release);
}

ShardedCluster::~ShardedCluster() = default;

std::unique_ptr<ShardedCluster::Shard> ShardedCluster::build_shard(ShardId id) {
  auto shard = std::make_unique<Shard>();
  shard->id = id;
  shard->db.assign(config_.shard_db_size, 0);
  shard->source.owner = shard.get();
  shard->membership = std::make_unique<cluster::Membership>(0, cluster::Role::kPrimary);
  shard->pipeline = std::make_unique<repl::RedoPipeline>(
      shard->source, nullptr, shard->membership.get(), repl::RedoPipeline::Lineage{0, 0},
      config_.redo_history_bytes);
  for (unsigned b = 0; b < config_.backups_per_shard; ++b) {
    auto backup = std::make_unique<Shard::Backup>(static_cast<int>(b) + 1,
                                                  config_.shard_db_size);
    backup->link = std::make_unique<InlineLink>(&backup->applier);
    if (b == 0) {
      shard->pipeline->attach_link(0, backup->link.get());
    } else {
      shard->pipeline->add_peer(backup->link.get());
    }
    shard->membership->adopt_backup(backup->node_id);
    shard->backups.push_back(std::move(backup));
  }
  shard->next_node = static_cast<int>(config_.backups_per_shard) + 1;
  shard->pipeline->set_two_safe(config_.two_safe && !shard->backups.empty());
  shard->pipeline->set_quorum(config_.quorum);
  if (!shard->backups.empty()) {
    VREP_CHECK(shard->pipeline->sync_backup());  // seed the replicas
  }
  return shard;
}

ShardId ShardedCluster::add_shard() {
  // shards_ must never reallocate (concurrent readers hold raw indexes), so
  // growth is bounded by the constructor's reservation.
  VREP_CHECK(shards_.size() < shards_.capacity());
  const ShardId id = static_cast<ShardId>(shards_.size());
  shards_.push_back(build_shard(id));
  live_shards_.store(static_cast<unsigned>(shards_.size()), std::memory_order_release);
  metrics::counter("shard.rebalance.shards_added").add(1);
  return id;
}

CrossShardCoordinator::Participant ShardedCluster::participant(Shard& shard) {
  CrossShardCoordinator::Participant p;
  p.id = shard.id;
  p.latch = &shard.latch;
  p.pipeline = shard.pipeline.get();
  p.db = shard.db.data();
  p.committed = &shard.committed;
  return p;
}

core::Latch& ShardedCluster::shard_latch(ShardId id) { return shards_.at(id)->latch; }
const std::uint8_t* ShardedCluster::shard_db_ptr(ShardId id) const {
  return shards_.at(id)->db.data();
}
CrossShardCoordinator::Participant ShardedCluster::shard_participant(ShardId id) {
  return participant(*shards_.at(id));
}

std::uint64_t ShardedCluster::run_local(Shard& shard, const wl::DebitCredit::TxnPlan& plan) {
  core::LatchGuard guard(shard.latch);
  repl::RedoPipeline& pipeline = *shard.pipeline;
  std::uint8_t* db = shard.db.data();

  pipeline.begin();
  auto write = [&](std::uint64_t off, const std::vector<std::uint8_t>& bytes) {
    pipeline.stage(off, bytes.data(), bytes.size());
    std::memcpy(db + off, bytes.data(), bytes.size());
    note_write(shard.id, off);
  };
  for (const std::uint64_t off : {workload_.account_offset(plan.account),
                                  workload_.teller_offset(plan.teller),
                                  workload_.branch_offset(plan.branch)}) {
    write(off, bumped_balance(db, off, plan.amount));
  }
  const wl::DebitCredit::HistoryRecord rec{plan.account, plan.teller, plan.branch,
                                           plan.amount};
  std::vector<std::uint8_t> hist(sizeof rec);
  std::memcpy(hist.data(), &rec, sizeof rec);
  write(workload_.history_offset(shard.committed), hist);

  const std::uint64_t seq = shard.committed + 1;
  shard.committed = seq;
  pipeline.commit(seq);
  return seq;
}

ShardedCluster::TxnOutcome ShardedCluster::run_one(
    const TxnDecision& d, const CrossShardCoordinator::ChaosHook& chaos) {
  TxnOutcome out;
  out.cross = d.cross;
  out.home = d.home;
  out.remote = d.remote;
  out.map_version = d.map_version;
  Shard& home = *shards_[d.home];

  if (!d.cross) {
    out.home_seq = run_local(home, d.plan);
    out.committed = true;
    return out;
  }

  Shard& remote = *shards_[d.remote];
  const std::uint64_t xid = coordinator_->next_xid(d.home);
  out.xid = xid;

  // The account rides the remote shard; teller, branch and the audit record
  // stay home.
  const wl::DebitCredit::TxnPlan plan = d.plan;
  const ShardId remote_id = d.remote;
  const ShardId home_id = d.home;
  CrossShardCoordinator::WriteGen remote_writes = [this, &remote, remote_id, plan] {
    std::vector<CrossShardCoordinator::Write> w;
    const std::uint64_t off = workload_.account_offset(plan.account);
    w.push_back({off, bumped_balance(remote.db.data(), off, plan.amount)});
    note_write(remote_id, off);
    return w;
  };
  CrossShardCoordinator::WriteGen home_writes = [this, &home, home_id, plan] {
    std::vector<CrossShardCoordinator::Write> w;
    for (const std::uint64_t off : {workload_.teller_offset(plan.teller),
                                    workload_.branch_offset(plan.branch)}) {
      w.push_back({off, bumped_balance(home.db.data(), off, plan.amount)});
      note_write(home_id, off);
    }
    const wl::DebitCredit::HistoryRecord rec{plan.account, plan.teller, plan.branch,
                                             plan.amount};
    std::vector<std::uint8_t> hist(sizeof rec);
    std::memcpy(hist.data(), &rec, sizeof rec);
    w.push_back({workload_.history_offset(home.committed), std::move(hist)});
    return w;
  };

  std::vector<CrossShardCoordinator::RemoteOp> remotes;
  remotes.push_back({participant(remote), std::move(remote_writes)});
  const CrossShardCoordinator::Outcome result =
      coordinator_->commit(participant(home), std::move(remotes), home_writes, xid, chaos);

  out.committed = result.committed;
  out.prepared = result.prepared;
  out.home_seq = result.home_seq;
  out.remote_seq = result.remote_seqs.empty() ? 0 : result.remote_seqs.front();
  // Every in-band resolution the coordinator performed feeds the audit.
  for (const ShardId id : result.decided) {
    (void)id;
    record_resolution(xid, result.committed);
  }
  return out;
}

ShardedCluster::RunResult ShardedCluster::run(std::uint64_t seed, std::uint64_t txns,
                                              double remote_fraction,
                                              const ChaosSchedule& chaos,
                                              const RebalanceScript& script) {
  Rng rng(seed);
  Router router(map_);
  RunResult res;
  res.trace.reserve(txns);
  bool kill_pending = chaos.kill_after_txn != 0;

  // Scripted reconfiguration rides the same loop: due ops fire before the
  // txn at their index (deferred while a migration is active), an active
  // migration advances by steps_per_txn chunks per txn, and whatever is
  // still open after the last txn is driven to completion (events at
  // txns+1). An empty script leaves the loop byte-identical to before.
  Rebalancer rebalancer(*this, Rebalancer::Config{script.chunk_records});
  std::size_t next_op = 0;
  RebalanceOp begin_op{};
  const auto fire_due = [&](std::uint64_t at, std::uint64_t due_limit) {
    while (next_op < script.ops.size() && script.ops[next_op].at_txn <= due_limit &&
           migration_ == nullptr) {
      const RebalanceOp op = script.ops[next_op++];
      RebalanceEvent ev;
      ev.at_txn = at;
      ev.op = op;
      switch (op.kind) {
        case RebalanceOp::Kind::kSplit:
          ev.op.at_hash = rebalancer.begin_split(op.shard, op.at_hash);
          ev.kind = RebalanceEvent::Kind::kBegin;
          begin_op = ev.op;
          break;
        case RebalanceOp::Kind::kMerge:
          rebalancer.begin_merge(op.shard);
          ev.kind = RebalanceEvent::Kind::kBegin;
          begin_op = ev.op;
          break;
        case RebalanceOp::Kind::kHandoff:
          handoff_primary(op.shard);
          ev.kind = RebalanceEvent::Kind::kHandoff;
          break;
        case RebalanceOp::Kind::kAddBackup:
          add_backup(op.shard);
          ev.kind = RebalanceEvent::Kind::kAddBackup;
          break;
      }
      ev.map_version = map_.version();
      ev.num_shards = num_shards();
      res.events.push_back(ev);
    }
  };
  const auto migrate_tick = [&](std::uint64_t at) {
    if (migration_ == nullptr) return;
    const unsigned steps = std::max(1u, script.steps_per_txn);
    for (unsigned k = 0; k < steps && migration_ != nullptr; ++k) {
      if (rebalancer.step()) continue;
      if (rebalancer.cutover()) {
        RebalanceEvent ev;
        ev.kind = RebalanceEvent::Kind::kCutover;
        ev.at_txn = at;
        ev.op = begin_op;
        ev.map_version = map_.version();
        ev.num_shards = num_shards();
        res.events.push_back(ev);
        fire_due(at, at);  // deferred ops fire right after the cutover
      }
      break;
    }
  };

  for (std::uint64_t i = 1; i <= txns; ++i) {
    fire_due(i, i);
    migrate_tick(i);

    const TxnDecision d = plan_txn(router, workload_, num_shards(), rng, remote_fraction);

    if (kill_pending && chaos.point == ChaosSchedule::Point::kBetweenTxns &&
        i >= chaos.kill_after_txn) {
      kill_primary(chaos.shard);
      kill_pending = false;
    }

    CrossShardCoordinator::ChaosHook hook;
    ShardId killed = CrossShardCoordinator::kNoKill;
    if (kill_pending && d.cross && i >= chaos.kill_after_txn &&
        chaos.point != ChaosSchedule::Point::kBetweenTxns) {
      const ShardId victim = chaos.target == ChaosSchedule::Target::kHomeShard ? d.home
                             : chaos.target == ChaosSchedule::Target::kRemoteShard
                                 ? d.remote
                                 : chaos.shard;
      const CrossShardCoordinator::Phase fire_at =
          chaos.point == ChaosSchedule::Point::kAfterPrepare
              ? CrossShardCoordinator::Phase::kAfterPrepare
              : CrossShardCoordinator::Phase::kAfterHomeCommit;
      hook = [this, victim, fire_at, &killed](CrossShardCoordinator::Phase phase,
                                              std::uint64_t) {
        if (phase != fire_at || killed != CrossShardCoordinator::kNoKill) {
          return killed;
        }
        // Snap the victim's links under the coordinator's latches; the
        // promotion runs after the coordinator returns.
        Shard& s = *shards_[victim];
        for (auto& b : s.backups) b->link->kill();
        s.primary_alive = false;
        killed = victim;
        return killed;
      };
      kill_pending = false;
    }

    const TxnOutcome out = run_one(d, hook);
    if (killed != CrossShardCoordinator::kNoKill) {
      promote(*shards_[killed]);
    }
    if (out.committed) {
      res.committed += 1;
      if (out.cross) res.cross_committed += 1;
    } else {
      res.chaos_aborted += 1;
    }
    res.trace.push_back(out);
  }

  // Finish the script: fire anything unfired and drain any open migration.
  while (next_op < script.ops.size() || migration_ != nullptr) {
    fire_due(txns + 1, std::numeric_limits<std::uint64_t>::max());
    migrate_tick(txns + 1);
  }

  res.takeovers = takeovers_;
  return res;
}

TxnDecision ShardedCluster::reroute_stale(const TxnDecision& decision) {
  TxnDecision d = decision;
  std::lock_guard<std::mutex> lock(map_mu_);
  if (d.map_version == 0 || d.map_version == map_.version()) return d;
  // The decision was planned against a superseded layout: abort it there
  // and retry against the live map in one step. The home re-routes by key;
  // a cross plan whose remote pick collided with the new home keeps the two
  // participants distinct by swapping in the old home.
  const ShardId home = map_.shard_of(hash_key(d.key));
  if (home != d.home) {
    rb_retried_2pc_.fetch_add(1, std::memory_order_relaxed);
    metrics::counter("shard.rebalance.retried_2pc").add(1);
    if (d.cross && d.remote == home) d.remote = d.home;
    d.home = home;
  }
  d.map_version = map_.version();
  return d;
}

bool ShardedCluster::execute(const TxnDecision& decision) {
  return run_one(reroute_stale(decision), CrossShardCoordinator::ChaosHook{}).committed;
}

// ---------------------------------------------------------------------------
// Chaos: kill + promote
// ---------------------------------------------------------------------------

void ShardedCluster::kill_primary(ShardId id) {
  Shard& s = *shards_.at(id);
  VREP_CHECK(s.primary_alive);
  core::LatchGuard guard(s.latch);
  for (auto& b : s.backups) b->link->kill();
  s.primary_alive = false;
  promote(s);
}

bool ShardedCluster::decide_in_doubt(std::uint64_t xid) const {
  const ShardId home = CrossShardCoordinator::home_of(xid);
  const Shard& h = *shards_.at(home);
  // The decision record lives in the home shard's surviving image: the
  // primary's if it is alive, else any backup's — a 2-safe home commit made
  // the record durable on the backups before any phase-2 decide, so every
  // surviving copy agrees.
  const std::uint8_t* home_db =
      h.primary_alive ? h.db.data() : h.backups.front()->target.bytes.data();
  return coordinator_->decision_log().committed(home_db, xid);
}

void ShardedCluster::record_resolution(std::uint64_t xid, bool commit) {
  std::lock_guard<std::mutex> lock(audit_mu_);
  auto [it, inserted] = resolutions_.emplace(xid, commit);
  if (!inserted && it->second != commit) {
    resolution_conflicts_ += 1;  // a transaction resolved both ways — never
  }
}

void ShardedCluster::promote(Shard& s) {
  VREP_CHECK(!s.primary_alive);
  VREP_CHECK(!s.backups.empty() && "cannot promote a shard with no backups");
  takeovers_ += 1;
  metrics::counter("shard.takeovers").add(1);

  // Resolve every buffered in-doubt transaction on every surviving replica
  // against the decision records BEFORE anyone serves traffic.
  for (auto& b : s.backups) {
    for (const std::uint64_t xid : b->applier.in_doubt_xids()) {
      const bool commit = decide_in_doubt(xid);
      record_resolution(xid, commit);
      VREP_CHECK(b->applier.resolve_in_doubt(xid, commit));
    }
  }

  // Promote backup 0 (inline delivery keeps every replica equally caught
  // up, so view order breaks the tie): its image becomes the primary image,
  // its takeover fences the dead primary's epoch.
  std::unique_ptr<Shard::Backup> winner = std::move(s.backups.front());
  s.backups.erase(s.backups.begin());
  const std::uint64_t prev_epoch = winner->applier.state_epoch();
  s.db = winner->target.bytes;
  s.committed = winner->applier.applied_seq();
  winner->membership->take_over();
  s.membership = std::move(winner->membership);
  s.pipeline = std::make_unique<repl::RedoPipeline>(
      s.source, nullptr, s.membership.get(),
      repl::RedoPipeline::Lineage{prev_epoch, s.committed}, config_.redo_history_bytes);
  s.primary_alive = true;

  // Re-adopt the surviving backups through the ordinary rejoin protocol.
  // Every adopt bumps the epoch, and a backup only learns a newer epoch from
  // its rejoin delta — so adopt ALL of them first (settling the epoch), then
  // serve the rejoins.
  readopt_backups(s);
}

// Attach fresh links, adopt every backup into the (possibly new) primary's
// view, then serve every rejoin at the settled epoch. Caller holds the
// shard latch (or owns the shard exclusively during a takeover).
void ShardedCluster::readopt_backups(Shard& s) {
  bool first = true;
  for (auto& b : s.backups) {
    b->link = std::make_unique<InlineLink>(&b->applier);
    if (first) {
      s.pipeline->attach_link(0, b->link.get());
      first = false;
    } else {
      s.pipeline->add_peer(b->link.get());
    }
    s.membership->adopt_backup(b->node_id);
  }
  for (std::size_t peer = 0; peer < s.backups.size(); ++peer) {
    auto& b = s.backups[peer];
    VREP_CHECK(b->applier.request_rejoin(b->link->reply_link()));
    VREP_CHECK(s.pipeline->handle_rejoin(peer, /*timeout_ms=*/10));
  }
  s.pipeline->set_two_safe(config_.two_safe && !s.backups.empty());
  s.pipeline->set_quorum(config_.quorum);
}

// ---------------------------------------------------------------------------
// Planned reconfiguration (no kill anywhere)
// ---------------------------------------------------------------------------

void ShardedCluster::handoff_primary(ShardId id) {
  Shard& s = *shards_.at(id);
  core::LatchGuard guard(s.latch);
  VREP_CHECK(s.primary_alive);
  VREP_CHECK(!s.backups.empty() && "handoff needs a backup to promote");
  VREP_CHECK(s.pipeline->in_doubt() == 0 && "drain 2PC before a planned handoff");

  // Quiesce: ship the tail and wait for EVERY peer (not just a quorum) to
  // acknowledge the full watermark, then prove the window is empty. After
  // this block nothing is in flight anywhere on the shard.
  VREP_CHECK(s.pipeline->drain_peers());
  for (const auto& b : s.backups) {
    VREP_CHECK(b->applier.applied_seq() == s.committed);
    VREP_CHECK(b->applier.in_doubt() == 0);
  }

  // Demote the old primary into a fresh backup seeded from its own image —
  // same bytes, same sequence, same lineage epoch — BEFORE the promotion
  // replaces s.db. Its node id is the old primary's, never reused.
  const std::uint64_t old_epoch = s.membership->view().epoch;
  auto demoted = std::make_unique<Shard::Backup>(s.membership->self(), config_.shard_db_size);
  demoted->applier.seed(s.db.data(), s.db.size(), s.committed, old_epoch);

  // Promote backup 0 exactly like a takeover, minus the takeover: no txn is
  // in doubt, no sequence is in flight, so nothing resolves through the
  // failure path and the epoch bump is the only visible change.
  std::unique_ptr<Shard::Backup> winner = std::move(s.backups.front());
  s.backups.erase(s.backups.begin());
  const std::uint64_t prev_epoch = winner->applier.state_epoch();
  s.db = winner->target.bytes;
  s.committed = winner->applier.applied_seq();
  winner->membership->take_over();
  s.membership = std::move(winner->membership);
  s.pipeline = std::make_unique<repl::RedoPipeline>(
      s.source, nullptr, s.membership.get(),
      repl::RedoPipeline::Lineage{prev_epoch, s.committed}, config_.redo_history_bytes);
  s.backups.push_back(std::move(demoted));

  // Re-adopt everyone — surviving backups AND the demoted primary — through
  // the ordinary rejoin protocol (adopts first so the epoch settles, then
  // the rejoins). All of them sit exactly at the takeover floor with the
  // fenced epoch's state, so every rejoin is an empty delta
  // (full_syncs_served stays 0 — the handoff ships no image).
  readopt_backups(s);

  rb_handoffs_.fetch_add(1, std::memory_order_relaxed);
  metrics::counter("shard.rebalance.handoffs").add(1);
}

void ShardedCluster::add_backup(ShardId id) {
  Shard& s = *shards_.at(id);
  core::LatchGuard guard(s.latch);
  VREP_CHECK(s.primary_alive);
  auto backup = std::make_unique<Shard::Backup>(s.next_node++, config_.shard_db_size);
  backup->link = std::make_unique<InlineLink>(&backup->applier);
  if (s.backups.empty()) {
    s.pipeline->attach_link(0, backup->link.get());
  } else {
    s.pipeline->add_peer(backup->link.get());
  }
  s.membership->adopt_backup(backup->node_id);
  s.backups.push_back(std::move(backup));
  // Adopting the newcomer bumped the epoch, and a backup only learns a
  // newer epoch from a sync-start frame — so EVERY backup rejoins at the
  // settled epoch: the new one syncs its image (the honest cost of growing
  // the replica set), the old ones get an empty delta carrying the epoch.
  for (std::size_t peer = 0; peer < s.backups.size(); ++peer) {
    auto& b = s.backups[peer];
    VREP_CHECK(b->applier.request_rejoin(b->link->reply_link()));
    VREP_CHECK(s.pipeline->handle_rejoin(peer, /*timeout_ms=*/10));
  }
  s.pipeline->set_two_safe(config_.two_safe && !s.backups.empty());
  s.pipeline->set_quorum(config_.quorum);
  rb_backup_adds_.fetch_add(1, std::memory_order_relaxed);
  metrics::counter("shard.rebalance.backup_adds").add(1);
}

ShardedCluster::RebalanceCounters ShardedCluster::rebalance_counters() const {
  RebalanceCounters c;
  c.bytes_moved = rb_bytes_moved_.load(std::memory_order_relaxed);
  c.records_moved = rb_records_moved_.load(std::memory_order_relaxed);
  c.chunks = rb_chunks_.load(std::memory_order_relaxed);
  c.retried_2pc = rb_retried_2pc_.load(std::memory_order_relaxed);
  c.cutover_stall_ns = rb_cutover_stall_ns_.load(std::memory_order_relaxed);
  c.cutovers = rb_cutovers_.load(std::memory_order_relaxed);
  c.handoffs = rb_handoffs_.load(std::memory_order_relaxed);
  c.backup_adds = rb_backup_adds_.load(std::memory_order_relaxed);
  return c;
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

const std::uint8_t* ShardedCluster::primary_db(ShardId id) const {
  return shards_.at(id)->db.data();
}
std::uint64_t ShardedCluster::shard_committed(ShardId id) const {
  return shards_.at(id)->committed;
}
std::uint64_t ShardedCluster::shard_epoch(ShardId id) const {
  return shards_.at(id)->membership->view().epoch;
}
std::size_t ShardedCluster::backup_count(ShardId id) const {
  return shards_.at(id)->backups.size();
}
const std::uint8_t* ShardedCluster::backup_db(ShardId id, std::size_t backup) const {
  return shards_.at(id)->backups.at(backup)->target.bytes.data();
}
std::uint64_t ShardedCluster::backup_applied(ShardId id, std::size_t backup) const {
  return shards_.at(id)->backups.at(backup)->applier.applied_seq();
}
std::size_t ShardedCluster::in_doubt(ShardId id) const {
  const Shard& s = *shards_.at(id);
  std::size_t n = s.pipeline->in_doubt();
  for (const auto& b : s.backups) n += b->applier.in_doubt();
  return n;
}
std::uint64_t ShardedCluster::full_syncs_served(ShardId id) const {
  return shards_.at(id)->pipeline->stats().full_syncs_served;
}

std::uint32_t ShardedCluster::shard_crc(ShardId id) const {
  return Crc32::of(shards_.at(id)->db.data(), workload_bytes_);
}

std::string ShardedCluster::check_replicas(ShardId id) const {
  const Shard& s = *shards_.at(id);
  for (std::size_t b = 0; b < s.backups.size(); ++b) {
    const auto& backup = *s.backups[b];
    if (backup.applier.applied_seq() != s.committed) {
      return "shard " + std::to_string(id) + " backup " + std::to_string(b) +
             " applied " + std::to_string(backup.applier.applied_seq()) + " != committed " +
             std::to_string(s.committed);
    }
    if (std::memcmp(backup.target.bytes.data(), s.db.data(), s.db.size()) != 0) {
      return "shard " + std::to_string(id) + " backup " + std::to_string(b) +
             " image diverges from the primary";
    }
  }
  return {};
}

std::string ShardedCluster::check_global_consistency() const {
  wl::DebitCredit::BalanceSums total;
  for (unsigned i = 0; i < num_shards(); ++i) {
    const wl::DebitCredit::BalanceSums sums = workload_.balance_sums(shards_[i]->db.data());
    total.accounts += sums.accounts;
    total.tellers += sums.tellers;
    total.branches += sums.branches;
  }
  if (total.accounts != total.tellers || total.tellers != total.branches) {
    return "global balance sums diverge: accounts=" + std::to_string(total.accounts) +
           " tellers=" + std::to_string(total.tellers) +
           " branches=" + std::to_string(total.branches);
  }
  return {};
}

}  // namespace vrep::shard
