// Two-phase commit across shards, over the per-shard redo pipelines.
//
// The coordinator commits one transaction that touches a HOME shard plus
// one or more REMOTE shards:
//
//   latch every touched shard, ascending shard id   (deadlock avoidance)
//   phase 1  for each remote, ascending id:
//              stage its writes; prepare_cross(seq, xid)
//              -> backups buffer the batch in-doubt; the remote primary's
//                 image is untouched (deferred apply)
//   commit   home shard: ONE ordinary commit carrying the home writes AND
//            the 16-byte decision record (shard/decision_log.hpp). The
//            moment this commit is durable — 2-safe: quorum-covered on the
//            home backups — the transaction is committed, whoever dies next.
//   phase 2  for each remote, ascending id (shard-sequence order):
//              apply the deferred bytes to the remote image; decide_cross
//              -> backups resolve their in-doubt buffer
//
// Failure rule (presumed abort): if any participant's primary dies before
// the home commit, the coordinator aborts — no decision record exists, so
// every surviving or promoted replica independently resolves the prepare as
// abort. If a remote primary dies after the home commit, the transaction IS
// committed; the remote's promoted backup finds the decision record in the
// home shard's surviving image and resolves commit. Both rules read the
// same bytes, so no transaction can resolve both ways.
//
// xids encode their home shard (top 16 bits), so in-doubt resolution can
// find the decision log with no side channel.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/latch.hpp"
#include "repl/pipeline.hpp"
#include "shard/decision_log.hpp"
#include "shard/shard_map.hpp"

namespace vrep::shard {

class CrossShardCoordinator {
 public:
  // One shard's commit surface for the duration of one transaction. The
  // cluster rebuilds these per transaction — a takeover swaps the pipeline
  // and the image out from under a long-lived view.
  struct Participant {
    ShardId id = 0;
    core::Latch* latch = nullptr;
    repl::RedoPipeline* pipeline = nullptr;
    std::uint8_t* db = nullptr;
    std::uint64_t* committed = nullptr;  // the shard Source's sequence counter
  };

  struct Write {
    std::uint64_t off = 0;
    std::vector<std::uint8_t> bytes;
  };

  // Writes are produced by a generator invoked AFTER the participant
  // latches are held: a write's new bytes depend on the current image
  // (balance += amount), so computing them before latching would race with
  // concurrent transactions on the same records.
  using WriteGen = std::function<std::vector<Write>()>;

  struct RemoteOp {
    Participant shard;
    WriteGen writes;
  };

  // Chaos injection point: called between 2PC phases; returns the id of a
  // shard whose primary just "died", or kNoKill. The coordinator reacts the
  // way a live deployment would: presumed abort before the decision is
  // durable, push forward through the survivors after.
  enum class Phase : std::uint8_t { kAfterPrepare, kAfterHomeCommit };
  static constexpr ShardId kNoKill = ~ShardId{0};
  using ChaosHook = std::function<ShardId(Phase, std::uint64_t xid)>;

  explicit CrossShardCoordinator(DecisionLog dlog) : dlog_(dlog) {}

  // Globally unique, home-shard-tagged transaction id.
  std::uint64_t next_xid(ShardId home) {
    return (static_cast<std::uint64_t>(home) << 48) |
           (xid_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  static ShardId home_of(std::uint64_t xid) { return static_cast<ShardId>(xid >> 48); }

  struct Outcome {
    bool committed = false;
    bool prepared = false;  // phase 1 reached at least one remote
    std::uint64_t home_seq = 0;
    std::vector<std::uint64_t> remote_seqs;  // one per remote, in call order
    // Remotes whose primary resolved in-band (phase 2 or live abort); a
    // remote missing here was dead and resolves at takeover instead.
    std::vector<ShardId> decided;
  };

  // Commit one cross-shard transaction. Latches every participant for the
  // full duration (the per-shard single-writer rule the executors already
  // follow); `remotes` need not be sorted. The home shard must not appear
  // among the remotes.
  Outcome commit(const Participant& home, std::vector<RemoteOp> remotes,
                 const WriteGen& home_writes, std::uint64_t xid,
                 const ChaosHook& chaos = {});

  const DecisionLog& decision_log() const { return dlog_; }

 private:
  DecisionLog dlog_;
  std::atomic<std::uint64_t> xid_counter_{0};
};

}  // namespace vrep::shard
