// Three-level cache hierarchy model for the virtual CPU.
//
// The paper's locality argument (Section 4.5, Section 7) is that Version 3
// wins because its accesses stay within the database and a compact undo log,
// while the mirroring versions also touch a mirror as large as the database,
// and that larger databases degrade gracefully because of extra cache misses.
// A standard multi-level cache simulator reproduces both effects.
//
// The default geometry approximates the Alpha 21164A of the paper's
// AlphaServer 4100 5/600: small on-chip L1 and L2 plus an 8 MB direct-mapped
// board-level cache. We model a uniform 64-byte line at every level for
// simplicity (the board cache's real line size; the smaller on-chip line only
// affects constants we calibrate anyway).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/clock.hpp"

namespace vrep::sim {

constexpr std::uint64_t kLineBytes = 64;

struct CacheLevelConfig {
  std::uint64_t size_bytes;
  std::uint32_t ways;
  SimTime hit_ns;
};

struct CacheConfig {
  std::vector<CacheLevelConfig> levels{
      {8 * 1024, 1, 3},        // L1: 8 KB direct-mapped
      {96 * 1024, 3, 15},      // L2: 96 KB 3-way
      {8 * 1024 * 1024, 1, 45} // L3: 8 MB direct-mapped board cache
  };
  SimTime memory_ns = 180;  // main-memory access on miss at every level
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits[8] = {};  // per level
  std::uint64_t misses = 0;    // missed every level
};

class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& config = CacheConfig{});

  // Charge one access touching [vaddr, vaddr+len) and return its cost.
  // Reads and writes cost the same (write-allocate, write-back; write-back
  // traffic is not separately modelled).
  SimTime access(std::uint64_t vaddr, std::uint64_t len);

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }
  // Drop all cached lines (used to model a cold start).
  void invalidate_all();

 private:
  struct Level {
    std::uint64_t set_mask;
    std::uint32_t ways;
    SimTime hit_ns;
    // tags[set * ways + i], LRU order within a set (index 0 = MRU).
    // A stored tag is (line + 1) so that 0 means "invalid".
    std::vector<std::uint64_t> tags;

    bool access_line(std::uint64_t line);
  };

  SimTime access_line(std::uint64_t line);

  std::vector<Level> levels_;
  SimTime memory_ns_;
  CacheStats stats_;
};

}  // namespace vrep::sim
