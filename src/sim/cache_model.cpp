#include "sim/cache_model.hpp"

#include <bit>

#include "util/check.hpp"

namespace vrep::sim {

CacheModel::CacheModel(const CacheConfig& config) : memory_ns_(config.memory_ns) {
  for (const auto& lc : config.levels) {
    Level level;
    const std::uint64_t lines = lc.size_bytes / kLineBytes;
    VREP_CHECK(lines % lc.ways == 0);
    const std::uint64_t sets = lines / lc.ways;
    VREP_CHECK(std::has_single_bit(sets));
    level.set_mask = sets - 1;
    level.ways = lc.ways;
    level.hit_ns = lc.hit_ns;
    level.tags.assign(lines, 0);
    levels_.push_back(std::move(level));
  }
}

bool CacheModel::Level::access_line(std::uint64_t line) {
  std::uint64_t* t = &tags[(line & set_mask) * ways];
  const std::uint64_t want = line + 1;
  if (t[0] == want) return true;  // fast path: MRU hit
  for (std::uint32_t i = 1; i < ways; ++i) {
    if (t[i] == want) {
      // Move to front (LRU update).
      for (std::uint32_t j = i; j > 0; --j) t[j] = t[j - 1];
      t[0] = want;
      return true;
    }
  }
  // Miss: insert as MRU, evicting the LRU way.
  for (std::uint32_t j = ways - 1; j > 0; --j) t[j] = t[j - 1];
  t[0] = want;
  return false;
}

SimTime CacheModel::access_line(std::uint64_t line) {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].access_line(line)) {
      // An inclusive hierarchy: a hit at level i also installs the line in
      // the levels above (already done by access_line probing order? no --
      // probe only until hit, then fill the faster levels).
      for (std::size_t j = 0; j < i; ++j) levels_[j].access_line(line);
      ++stats_.hits[i];
      return levels_[i].hit_ns;
    }
  }
  ++stats_.misses;
  return memory_ns_;
}

SimTime CacheModel::access(std::uint64_t vaddr, std::uint64_t len) {
  if (len == 0) return 0;
  const std::uint64_t first = vaddr / kLineBytes;
  const std::uint64_t last = (vaddr + len - 1) / kLineBytes;
  SimTime cost = 0;
  for (std::uint64_t line = first; line <= last; ++line) cost += access_line(line);
  stats_.accesses += last - first + 1;
  return cost;
}

void CacheModel::invalidate_all() {
  for (auto& level : levels_) level.tags.assign(level.tags.size(), 0);
}

}  // namespace vrep::sim
