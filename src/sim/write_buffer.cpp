#include "sim/write_buffer.hpp"

#include "util/check.hpp"

namespace vrep::sim {

void WriteBufferSet::store(std::uint64_t io_offset, const void* src, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(src);
  while (len > 0) {
    const std::size_t in_block = kWriteBufferBytes - (io_offset % kWriteBufferBytes);
    const std::size_t chunk = len < in_block ? len : in_block;
    store_within_block(io_offset, p, chunk);
    io_offset += chunk;
    p += chunk;
    len -= chunk;
  }
}

void WriteBufferSet::store_within_block(std::uint64_t io_offset, const std::uint8_t* src,
                                        std::size_t len) {
  const std::uint64_t block = io_offset / kWriteBufferBytes;
  Buffer* target = nullptr;
  for (auto& b : buffers_) {
    if (b.valid && b.block == block) {
      target = &b;
      break;
    }
  }
  if (target == nullptr) {
    // Need a fresh buffer: take an invalid one, else evict the oldest.
    Buffer* oldest = nullptr;
    for (auto& b : buffers_) {
      if (!b.valid) {
        target = &b;
        break;
      }
      if (oldest == nullptr || b.age < oldest->age) oldest = &b;
    }
    if (target == nullptr) {
      flush(*oldest);
      target = oldest;
    }
    target->valid = true;
    target->block = block;
    target->mask = 0;
    target->age = next_age_++;
  }

  const std::size_t at = io_offset % kWriteBufferBytes;
  std::memcpy(target->data.data() + at, src, len);
  target->mask |= ((len == kWriteBufferBytes ? 0u : (1u << len)) - 1u) << at;
  if (!coalescing_ || target->mask == 0xffffffffu) flush(*target);
}

void WriteBufferSet::flush(Buffer& b) {
  VREP_DCHECK(b.valid && b.mask != 0);
  // Emit one packet per contiguous run of valid bytes.
  std::uint32_t mask = b.mask;
  std::size_t i = 0;
  while (i < kWriteBufferBytes) {
    if ((mask & (1u << i)) == 0) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < kWriteBufferBytes && (mask & (1u << j)) != 0) ++j;
    Packet pkt;
    pkt.io_offset = b.block * kWriteBufferBytes + i;
    pkt.len = static_cast<std::uint32_t>(j - i);
    std::memcpy(pkt.data.data(), b.data.data() + i, j - i);
    ++packets_emitted_;
    sink_(pkt);
    i = j;
  }
  b.valid = false;
  b.mask = 0;
}

void WriteBufferSet::flush_all() {
  // Flush in allocation order to preserve store ordering as seen remotely.
  while (true) {
    Buffer* oldest = nullptr;
    for (auto& b : buffers_) {
      if (b.valid && (oldest == nullptr || b.age < oldest->age)) oldest = &b;
    }
    if (oldest == nullptr) return;
    flush(*oldest);
  }
}

}  // namespace vrep::sim
