// Virtual time. All performance experiments in this repository run against a
// deterministic virtual clock (nanoseconds) rather than wall-clock time, so
// that results are reproducible and independent of the host machine. See
// DESIGN.md section 2 ("Time model").
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace vrep::sim {

using SimTime = std::int64_t;  // nanoseconds of virtual time

constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;

class VirtualClock {
 public:
  SimTime now() const { return now_; }

  void advance(SimTime delta) {
    VREP_DCHECK(delta >= 0);
    now_ += delta;
  }

  // Jump forward to an absolute time; no-op if already past it.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

  void reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

inline double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }

}  // namespace vrep::sim
