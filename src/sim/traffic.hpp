// Classification of bytes written through to the backup, matching the
// three-way breakdown the paper reports in Tables 2, 5, and 7:
// modified transaction data, undo data, and meta-data.
#pragma once

#include <array>
#include <cstdint>

namespace vrep::sim {

enum class TrafficClass : std::uint8_t {
  kModified = 0,  // bytes of the database changed by transactions (redo data)
  kUndo = 1,      // before-images written to the undo log / mirror
  kMeta = 2,      // everything else: headers, pointers, allocator state, flags
};

constexpr std::size_t kNumTrafficClasses = 3;

struct TrafficStats {
  std::array<std::uint64_t, kNumTrafficClasses> bytes{};

  void add(TrafficClass c, std::uint64_t n) { bytes[static_cast<std::size_t>(c)] += n; }
  std::uint64_t total() const { return bytes[0] + bytes[1] + bytes[2]; }
  std::uint64_t modified() const { return bytes[0]; }
  std::uint64_t undo() const { return bytes[1]; }
  std::uint64_t meta() const { return bytes[2]; }

  TrafficStats& operator+=(const TrafficStats& o) {
    for (std::size_t i = 0; i < kNumTrafficClasses; ++i) bytes[i] += o.bytes[i];
    return *this;
  }
};

}  // namespace vrep::sim
