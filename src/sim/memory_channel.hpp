// Memory Channel write-through SAN emulation.
//
// The Memory Channel (paper Section 2.3) lets a node map a region of another
// node's physical memory into its own I/O space; stores to that I/O space are
// transmitted and DMA'd into the remote memory without involving the remote
// CPU. Remote reads are not supported, so shared data is "write doubled":
// each store is performed once on the local copy and once on the I/O space.
//
// We emulate this with two cooperating classes:
//
//  * McFabric — one per (sender -> receiver) direction. Owns the I/O-space
//    segment table (io offset -> remote memory), the link occupancy state
//    shared by every CPU of the sending node, and the in-flight packet
//    journal. Packets physically deliver their payload bytes into the remote
//    memory when virtual time reaches their delivery timestamp, which gives
//    real 1-safe semantics: a primary crash drops packets still in flight.
//
//  * McInterface — one per sending CPU. Owns that CPU's write buffers
//    (coalescing model) and its adapter FIFO: when the FIFO is full the CPU
//    stalls until the oldest packet leaves on the link. This is how link
//    bandwidth back-pressures the transaction engine.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "sim/clock.hpp"
#include "sim/link_model.hpp"
#include "sim/traffic.hpp"
#include "sim/write_buffer.hpp"

namespace vrep::sim {

class McFabric {
 public:
  explicit McFabric(const LinkModel& model) : model_(model) {}

  // Map `len` bytes of receiver memory into this fabric's I/O space.
  // Returns the I/O-space base offset for the segment.
  std::uint64_t map_segment(void* remote_base, std::size_t len);

  // Hand a completed packet to the wire; it will land in remote memory at
  // `deliver_at` (completion + propagation).
  void submit(const Packet& pkt, SimTime deliver_at);

  // Apply every packet whose delivery time is <= t.
  void deliver_until(SimTime t);
  void deliver_all();

  // Primary crash at time t: packets already delivered stay, packets still
  // in flight are lost. Returns the number of packets dropped.
  std::size_t crash_at(SimTime t);

  const LinkModel& model() const { return model_; }
  LinkState& link() { return link_; }

  std::uint64_t packets_of_size(std::size_t s) const { return packets_of_size_[s]; }
  std::uint64_t total_packets() const { return link_.packets; }
  std::uint64_t total_bytes() const { return link_.bytes; }
  void count_packet(const Packet& pkt);

 private:
  struct Segment {
    std::uint64_t io_base;
    std::size_t len;
    std::uint8_t* remote;
  };

  struct InFlight {
    SimTime deliver_at;
    std::uint64_t seq;
    Packet pkt;
    bool operator>(const InFlight& o) const {
      return deliver_at != o.deliver_at ? deliver_at > o.deliver_at : seq > o.seq;
    }
  };

  std::uint8_t* resolve(std::uint64_t io_offset, std::size_t len);

  LinkModel model_;
  LinkState link_;
  std::vector<Segment> segments_;
  std::uint64_t next_io_ = 1 << 20;  // leave a guard gap at the bottom
  std::uint64_t next_seq_ = 0;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> in_flight_;
  std::uint64_t packets_of_size_[kWriteBufferBytes + 1] = {};
};

class McInterface {
 public:
  // `store_base_ns`/`store_byte_ns` model the CPU cost of the doubled store
  // into I/O space (the store itself; draining is asynchronous).
  // `small_packet_penalty_ns` is charged per sub-32-byte packet (non-burst
  // PCI transaction; see AlphaCostModel::io_small_packet_penalty_ns).
  McInterface(McFabric* fabric, VirtualClock* clk, int fifo_depth, SimTime store_base_ns,
              double store_byte_ns, SimTime small_packet_penalty_ns, bool coalescing = true);

  // Write-through `len` bytes at I/O-space offset `io_offset`.
  void io_write(std::uint64_t io_offset, const void* src, std::size_t len, TrafficClass cls);

  // Memory barrier: drain the write buffers (used before advancing a commit
  // flag / producer pointer so the remote side observes a consistent order).
  void flush();

  // Drop all buffered-but-unsent stores (CPU crash before they left the
  // write buffers).
  void drop_pending();

  const TrafficStats& traffic() const { return traffic_; }
  SimTime stall_ns() const { return stall_ns_; }
  std::uint64_t packets() const { return wbufs_.packets_emitted(); }
  McFabric* fabric() { return fabric_; }

 private:
  void on_packet(const Packet& pkt);

  McFabric* fabric_;
  VirtualClock* clk_;
  WriteBufferSet wbufs_;
  std::deque<SimTime> fifo_;  // completion times of packets queued in the adapter
  std::size_t fifo_depth_;
  SimTime store_base_ns_;
  double store_byte_ns_;
  SimTime small_packet_penalty_ns_;
  TrafficStats traffic_;
  SimTime stall_ns_ = 0;
};

}  // namespace vrep::sim
