// The instrumented memory layer.
//
// The transaction library performs all of its database / log / mirror memory
// operations through a MemBus. The bus
//   1. actually performs the operation on real memory (so functional
//      behaviour — recovery, takeover, data integrity — is exact),
//   2. charges virtual-time CPU costs (fixed op cost + cache-model access
//      cost at a stable *virtual* address, so results are independent of
//      where the host allocator placed the buffers), and
//   3. transparently "write doubles" stores that fall inside a region
//      registered as replicated, forwarding them to the Memory Channel
//      interface exactly as the paper's primary-backup versions do.
//
// A MemBus constructed with a null clock is a plain pass-through (used by
// purely functional unit tests and by the real-TCP replication path, which
// runs on wall-clock time).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/alpha_cost_model.hpp"
#include "sim/cache_model.hpp"
#include "sim/memory_channel.hpp"
#include "sim/traffic.hpp"

namespace vrep::sim {

// Hook invoked before every charged store. The crash-injection harness in
// rio/crash.hpp implements this to throw a SimulatedCrash at the N-th write,
// which lets tests exercise recovery at every store boundary.
struct WriteHook {
  virtual void on_write() = 0;

 protected:
  ~WriteHook() = default;
};

class MemBus {
 public:
  // Simulated bus. All three pointers must outlive the bus.
  MemBus(VirtualClock* clk, CacheModel* cache, const AlphaCostModel* cost)
      : clk_(clk), cache_(cache), cost_(cost) {}
  // Pass-through bus: no costs, no replication.
  MemBus() = default;

  bool simulated() const { return clk_ != nullptr; }
  VirtualClock* clock() { return clk_; }
  // Always valid: pass-through buses see the default cost model (whose
  // charges are no-ops anyway since there is no clock).
  const AlphaCostModel& cost() const {
    static const AlphaCostModel kDefault{};
    return cost_ != nullptr ? *cost_ : kDefault;
  }

  // Attach the outgoing Memory Channel interface used for replicated regions.
  void attach_mc(McInterface* mc) { mc_ = mc; }
  McInterface* mc() { return mc_; }

  // Register [base, base+len) so cache charging uses a stable virtual
  // address. Every persistent arena registers itself.
  void register_region(const void* base, std::size_t len);

  // Additionally mark a registered region as replicated: every write inside
  // it is doubled onto the Memory Channel, landing at remote_base on the
  // receiving node. Requires attach_mc() first.
  void replicate_region(const void* base, void* remote_base);
  void unreplicate_region(const void* base);

  // ---- charged operations ----------------------------------------------

  // Charge a fixed CPU cost (operation bookkeeping).
  void charge(SimTime ns) {
    if (clk_ != nullptr) clk_->advance(ns);
  }

  // Charge a read of [src, src+len) without moving data.
  void read(const void* src, std::size_t len);

  // memcpy(dst, src, len) where src is small caller-owned data (not charged
  // as a cached read): the canonical "store into the database" operation.
  void write(void* dst, const void* src, std::size_t len, TrafficClass cls);

  template <typename T>
  void write_pod(T* dst, const T& v, TrafficClass cls) {
    write(dst, &v, sizeof v, cls);
  }

  // Charged memcpy: read of src + write of dst + per-byte copy cost.
  void copy(void* dst, const void* src, std::size_t len, TrafficClass cls);

  // Compare [src] against [dst]; where they differ, update dst (and write
  // through only the differing runs). Returns the number of bytes that
  // changed. This is Version 2's "mirror by diffing" commit primitive.
  std::size_t diff_copy(void* dst, const void* src, std::size_t len, TrafficClass cls);

  // Memory barrier: drain the write buffers so everything stored so far is
  // ordered before anything stored later (used around commit flags).
  void barrier();

  // Crash injection (tests only; null in benchmarks).
  void set_write_hook(WriteHook* hook) { hook_ = hook; }

  // ---- write capture ------------------------------------------------------
  // The active replication scheme needs the bytes each transaction modifies
  // in the database, so it can ship them as a redo log at commit. Capture
  // observes every store landing inside [base, base+len) and reports it
  // region-relative. (This is the "local write doubling into the redo
  // staging buffer" of an active primary; its CPU cost is charged by the
  // sink.)
  struct CaptureSink {
    virtual void on_captured_store(std::uint64_t off, const void* src, std::size_t len) = 0;

   protected:
    ~CaptureSink() = default;
  };
  void set_capture(const void* base, std::size_t len, CaptureSink* sink) {
    cap_lo_ = reinterpret_cast<std::uintptr_t>(base);
    cap_hi_ = cap_lo_ + len;
    capture_ = sink;
  }
  void clear_capture() { capture_ = nullptr; }

 private:
  struct Region {
    std::uintptr_t lo = 0;
    std::uintptr_t hi = 0;
    std::uint64_t vbase = 0;     // stable virtual base for cache indexing
    bool replicated = false;
    std::uint64_t io_base = 0;   // valid when replicated
  };

  const Region* find(const void* p) const;
  void charge_access(const void* p, std::size_t len, const Region* r);
  void write_through(const Region* r, const void* dst, const void* src, std::size_t len,
                     TrafficClass cls);

  VirtualClock* clk_ = nullptr;
  CacheModel* cache_ = nullptr;
  const AlphaCostModel* cost_ = nullptr;
  McInterface* mc_ = nullptr;
  WriteHook* hook_ = nullptr;
  CaptureSink* capture_ = nullptr;
  std::uintptr_t cap_lo_ = 0, cap_hi_ = 0;
  std::vector<Region> regions_;
  mutable std::size_t last_region_ = 0;
  std::uint64_t next_vbase_ = 1 << 20;
};

}  // namespace vrep::sim
