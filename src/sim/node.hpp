// Composition of the simulation pieces into CPUs and nodes.
//
// A Cpu bundles a virtual clock, a private cache, an optional Memory Channel
// interface (senders only), and the instrumented memory bus the transaction
// engine runs on. A Node is a machine: one or more CPUs (the paper's SMP
// experiment uses 4) that share the node's single Memory Channel adapter
// occupancy (LinkState inside the McFabric).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sim/alpha_cost_model.hpp"
#include "sim/mem_bus.hpp"

namespace vrep::sim {

class Cpu {
 public:
  // `fabric` may be null for a CPU that never sends (standalone runs, the
  // passive backup).
  Cpu(const AlphaCostModel& cost, McFabric* fabric)
      : cost_(&cost), cache_(cost.cache) {
    if (fabric != nullptr) {
      mc_.emplace(fabric, &clk_, cost.fifo_depth, cost.io_store_base_ns, cost.io_store_byte_ns,
                  cost.io_small_packet_penalty_ns, cost.write_buffer_coalescing);
    }
    bus_ = MemBus(&clk_, &cache_, cost_);
    if (mc_.has_value()) bus_.attach_mc(&*mc_);
  }

  VirtualClock& clock() { return clk_; }
  CacheModel& cache() { return cache_; }
  MemBus& bus() { return bus_; }
  McInterface* mc() { return mc_.has_value() ? &*mc_ : nullptr; }
  const AlphaCostModel& cost() const { return *cost_; }

 private:
  const AlphaCostModel* cost_;
  VirtualClock clk_;
  CacheModel cache_;
  std::optional<McInterface> mc_;
  MemBus bus_;
};

class Node {
 public:
  Node(const AlphaCostModel& cost, int num_cpus, McFabric* out_fabric) {
    for (int i = 0; i < num_cpus; ++i) cpus_.push_back(std::make_unique<Cpu>(cost, out_fabric));
  }

  Cpu& cpu(std::size_t i = 0) { return *cpus_.at(i); }
  std::size_t num_cpus() const { return cpus_.size(); }

 private:
  std::vector<std::unique_ptr<Cpu>> cpus_;
};

}  // namespace vrep::sim
