// Cost model for the Memory Channel II link.
//
// The paper measures (Figure 1) an effective process-to-process bandwidth
// that rises steeply with packet size: ~14 MB/s for 4-byte packets up to
// 80 MB/s for 32-byte packets (the largest packet the Alpha write buffers /
// PCI bridge produce). We model the service time of a packet of s bytes as
//
//     t(s) = per_packet_ns + s * ns_per_byte
//
// and fit the two constants to the paper's endpoints:
//     32 / t(32) = 80 MB/s   and   4 / t(4) = 14 MB/s
// giving per_packet_ns ~= 269 ns and a raw byte rate of ~245 MB/s. The
// intermediate points predicted by the fit (8 B -> ~27 MB/s, 16 B -> ~48 MB/s)
// match Figure 1's shape.
#pragma once

#include <cstddef>

#include "sim/clock.hpp"

namespace vrep::sim {

struct LinkModel {
  // Fixed cost charged per Memory Channel packet (PCI transaction set-up,
  // header, DMA initiation on the remote side).
  SimTime per_packet_ns = 269;
  // Incremental cost per payload byte (raw link rate ~245 MB/s).
  double ns_per_byte = 4.08;
  // One-way propagation delay (the paper's 3.3 us uncontended 4-byte write
  // latency is dominated by this term, not by occupancy).
  SimTime propagation_ns = 3'000;

  SimTime packet_time(std::size_t bytes) const {
    return per_packet_ns + static_cast<SimTime>(static_cast<double>(bytes) * ns_per_byte);
  }

  // Effective sustained bandwidth in MB/s when streaming packets of `bytes`.
  double effective_bandwidth_mbs(std::size_t bytes) const {
    return static_cast<double>(bytes) / static_cast<double>(packet_time(bytes)) * 1e9 / 1e6;
  }
};

// Occupancy state of one link, shared by every CPU of the sending node (the
// Memory Channel adapter is a single per-node resource).
struct LinkState {
  SimTime free_at = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  SimTime busy_ns = 0;

  // Returns the completion time of a packet issued at `now`.
  SimTime serve(SimTime now, SimTime service_ns) {
    const SimTime start = now > free_at ? now : free_at;
    free_at = start + service_ns;
    busy_ns += service_ns;
    ++packets;
    return free_at;
  }
};

}  // namespace vrep::sim
