#include "sim/mem_bus.hpp"

#include "util/check.hpp"
#include "util/metrics.hpp"

namespace vrep::sim {

void MemBus::register_region(const void* base, std::size_t len) {
  // Idempotent: a store re-attaching after a simulated reboot re-registers
  // the same regions.
  for (const auto& existing : regions_) {
    if (existing.lo == reinterpret_cast<std::uintptr_t>(base)) {
      VREP_CHECK(existing.hi - existing.lo == len);
      return;
    }
  }
  Region r;
  r.lo = reinterpret_cast<std::uintptr_t>(base);
  r.hi = r.lo + len;
  r.vbase = next_vbase_;
  // 1 MB-align virtual bases so distinct regions never share a cache line
  // and layouts are deterministic regardless of host allocation addresses.
  next_vbase_ += (len + (1 << 20) - 1) & ~std::uint64_t{(1 << 20) - 1};
  regions_.push_back(r);
}

void MemBus::replicate_region(const void* base, void* remote_base) {
  VREP_CHECK(mc_ != nullptr);
  for (auto& r : regions_) {
    if (r.lo == reinterpret_cast<std::uintptr_t>(base)) {
      r.replicated = true;
      r.io_base = mc_->fabric()->map_segment(remote_base, r.hi - r.lo);
      return;
    }
  }
  VREP_CHECK(false && "replicate_region: region not registered");
}

void MemBus::unreplicate_region(const void* base) {
  for (auto& r : regions_) {
    if (r.lo == reinterpret_cast<std::uintptr_t>(base)) {
      r.replicated = false;
      return;
    }
  }
}

const MemBus::Region* MemBus::find(const void* p) const {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  if (last_region_ < regions_.size()) {
    const Region& r = regions_[last_region_];
    if (addr >= r.lo && addr < r.hi) return &r;
  }
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (addr >= regions_[i].lo && addr < regions_[i].hi) {
      last_region_ = i;
      return &regions_[i];
    }
  }
  return nullptr;
}

void MemBus::charge_access(const void* p, std::size_t len, const Region* r) {
  if (clk_ == nullptr) return;
  clk_->advance(cost_->access_base_ns);
  if (r == nullptr) {
    clk_->advance(cost_->unregistered_access_ns);
    return;
  }
  const std::uint64_t vaddr = r->vbase + (reinterpret_cast<std::uintptr_t>(p) - r->lo);
  clk_->advance(cache_->access(vaddr, len));
}

void MemBus::write_through(const Region* r, const void* dst, const void* src, std::size_t len,
                           TrafficClass cls) {
  if (capture_ != nullptr) {
    const auto addr = reinterpret_cast<std::uintptr_t>(dst);
    if (addr >= cap_lo_ && addr + len <= cap_hi_) {
      capture_->on_captured_store(addr - cap_lo_, src, len);
    }
  }
  if (r == nullptr || !r->replicated || mc_ == nullptr) return;
  static metrics::Counter* const by_class[kNumTrafficClasses] = {
      &metrics::counter("sim.bus.shipped_bytes.modified"),
      &metrics::counter("sim.bus.shipped_bytes.undo"),
      &metrics::counter("sim.bus.shipped_bytes.meta"),
  };
  by_class[static_cast<std::size_t>(cls)]->add(len);
  const std::uint64_t io = r->io_base + (reinterpret_cast<std::uintptr_t>(dst) - r->lo);
  mc_->io_write(io, src, len, cls);
}

void MemBus::read(const void* src, std::size_t len) {
  charge_access(src, len, find(src));
}

void MemBus::write(void* dst, const void* src, std::size_t len, TrafficClass cls) {
  if (hook_ != nullptr) hook_->on_write();
  std::memcpy(dst, src, len);
  const Region* r = find(dst);
  charge_access(dst, len, r);
  write_through(r, dst, src, len, cls);
}

void MemBus::copy(void* dst, const void* src, std::size_t len, TrafficClass cls) {
  if (hook_ != nullptr) hook_->on_write();
  std::memcpy(dst, src, len);
  const Region* rs = find(src);
  charge_access(src, len, rs);
  const Region* rd = find(dst);
  charge_access(dst, len, rd);
  if (clk_ != nullptr) {
    clk_->advance(static_cast<SimTime>(static_cast<double>(len) * cost_->copy_byte_ns));
  }
  write_through(rd, dst, src, len, cls);
}

std::size_t MemBus::diff_copy(void* dst, const void* src, std::size_t len, TrafficClass cls) {
  if (hook_ != nullptr) hook_->on_write();
  const Region* rs = find(src);
  charge_access(src, len, rs);
  const Region* rd = find(dst);
  charge_access(dst, len, rd);
  if (clk_ != nullptr) {
    clk_->advance(static_cast<SimTime>(static_cast<double>(len) * cost_->compare_byte_ns));
  }
  // Find differing runs at word granularity (the paper's diff works on
  // machine words; finer granularity would trade compare cost for bytes).
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  std::size_t changed = 0;
  std::size_t i = 0;
  while (i < len) {
    if (d[i] == s[i]) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < len && d[j] != s[j]) ++j;
    std::memcpy(d + i, s + i, j - i);
    write_through(rd, d + i, s + i, j - i, cls);
    changed += j - i;
    i = j;
  }
  return changed;
}

void MemBus::barrier() {
  if (mc_ != nullptr) mc_->flush();
  if (clk_ != nullptr) clk_->advance(cost_->barrier_ns);
}

}  // namespace vrep::sim
