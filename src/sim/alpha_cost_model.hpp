// Every calibration constant of the virtual machine lives here.
//
// The paper ran on a 600 MHz Alpha 21164A (AlphaServer 4100 5/600) with a
// Memory Channel II SAN. We cannot rerun on that hardware, so the simulator
// charges virtual-time costs chosen to land the *standalone* results
// (paper Table 3) in the right ballpark; everything downstream — the
// primary-backup tables, the SMP figures — is then *predicted* by the models
// rather than fitted. EXPERIMENTS.md records the calibration procedure and
// the resulting paper-vs-measured comparison for every table and figure.
//
// Rationale for the defaults:
//  * cache geometry and latencies: 21164A-like (see cache_model.hpp);
//    180 ns memory latency is typical for the 4100's era.
//  * fixed operation costs: a 600 MHz in-order dual-issue core executes
//    roughly 0.6-1.2 simple instructions per ns; a heap malloc/free pair in
//    a persistent heap with boundary tags is a few hundred instructions.
//  * copy/compare per-byte costs: 8-byte loads/stores at ~1 per cycle give
//    ~0.2-0.5 ns/B on cache-resident data (cache misses are charged
//    separately by the cache model).
#pragma once

#include "sim/cache_model.hpp"
#include "sim/link_model.hpp"

namespace vrep::sim {

struct AlphaCostModel {
  CacheConfig cache{};
  LinkModel link{};
  // Adapter FIFO depth in packets. Shallow, as the paper's measurements
  // imply: communication time adds almost linearly to execution time (Table
  // 1's analysis), i.e. the CPU gets little overlap once the link is busy.
  int fifo_depth = 3;

  // --- per-operation fixed CPU costs (ns) -------------------------------
  SimTime txn_dispatch_ns = 450;     // workload generation + call overhead per txn
  SimTime begin_ns = 150;             // begin_transaction bookkeeping
  SimTime commit_base_ns = 300;      // commit_transaction fixed part
  SimTime commit_per_range_ns = 120;  // per undo/mirror record processed at commit
  SimTime abort_base_ns = 200;
  SimTime set_range_base_ns = 230;   // set_range fixed part (range bookkeeping)

  // Version 0 (Vista) only: persistent-heap allocation and linked-list
  // manipulation per undo record.
  SimTime malloc_ns = 70;
  SimTime free_ns = 60;
  SimTime list_op_ns = 90;

  // --- data movement CPU costs ------------------------------------------
  double copy_byte_ns = 0.40;     // bcopy-style copy, per byte (plus cache costs)
  double compare_byte_ns = 6.00;  // byte-compare with branches on an in-order core
  SimTime access_base_ns = 2;     // fixed cost per MemBus operation

  // Doubled store into I/O space (write-through): the store itself.
  SimTime io_store_base_ns = 5;
  double io_store_byte_ns = 0.40;
  SimTime barrier_ns = 30;  // memory barrier draining the write buffers
  // Log-record checksumming (torn-write detection in the redo stream).
  double checksum_byte_ns = 1.0;

  // CPU-side penalty per *partial* (sub-32-byte) Memory Channel packet: a
  // non-full write buffer drains as a non-burst PCI transaction whose
  // address/turnaround phases stall the store pipeline. Full 32-byte bursts
  // stream without this cost. This term is what makes scattered small writes
  // (the mirroring versions, and Version 0's pointer chasing) so much more
  // expensive than the same number of bytes written sequentially — the
  // effect behind the paper's Tables 4 and Figure 2/3 saturation.
  SimTime io_small_packet_penalty_ns = 320;

  // Cost charged when the bus touches memory it has no region registration
  // for (stack temporaries and the like): treated as an L1 hit.
  SimTime unregistered_access_ns = 3;

  // Model ablation (benches only): disable write-buffer merging so every
  // store drains as its own packet.
  bool write_buffer_coalescing = true;
};

}  // namespace vrep::sim
