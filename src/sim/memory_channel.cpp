#include "sim/memory_channel.hpp"

#include <cstring>
#include <limits>

#include "util/check.hpp"
#include "util/metrics.hpp"

namespace vrep::sim {

std::uint64_t McFabric::map_segment(void* remote_base, std::size_t len) {
  Segment seg;
  seg.io_base = next_io_;
  seg.len = len;
  seg.remote = static_cast<std::uint8_t*>(remote_base);
  segments_.push_back(seg);
  // Page-align the next base so a 32-byte block never spans two segments.
  next_io_ += (len + 8191) & ~std::uint64_t{8191};
  return seg.io_base;
}

std::uint8_t* McFabric::resolve(std::uint64_t io_offset, std::size_t len) {
  for (const auto& seg : segments_) {
    if (io_offset >= seg.io_base && io_offset + len <= seg.io_base + seg.len) {
      return seg.remote + (io_offset - seg.io_base);
    }
  }
  return nullptr;
}

void McFabric::count_packet(const Packet& pkt) {
  VREP_DCHECK(pkt.len >= 1 && pkt.len <= kWriteBufferBytes);
  ++packets_of_size_[pkt.len];
  link_.bytes += pkt.len;
}

void McFabric::submit(const Packet& pkt, SimTime deliver_at) {
  in_flight_.push(InFlight{deliver_at, next_seq_++, pkt});
}

void McFabric::deliver_until(SimTime t) {
  while (!in_flight_.empty() && in_flight_.top().deliver_at <= t) {
    const Packet& pkt = in_flight_.top().pkt;
    std::uint8_t* dst = resolve(pkt.io_offset, pkt.len);
    VREP_CHECK(dst != nullptr);
    std::memcpy(dst, pkt.data.data(), pkt.len);
    in_flight_.pop();
  }
}

void McFabric::deliver_all() {
  deliver_until(std::numeric_limits<SimTime>::max());
}

std::size_t McFabric::crash_at(SimTime t) {
  deliver_until(t);
  const std::size_t dropped = in_flight_.size();
  in_flight_ = {};
  return dropped;
}

McInterface::McInterface(McFabric* fabric, VirtualClock* clk, int fifo_depth,
                         SimTime store_base_ns, double store_byte_ns,
                         SimTime small_packet_penalty_ns, bool coalescing)
    : fabric_(fabric),
      clk_(clk),
      wbufs_([this](const Packet& pkt) { on_packet(pkt); }, coalescing),
      fifo_depth_(static_cast<std::size_t>(fifo_depth)),
      store_base_ns_(store_base_ns),
      store_byte_ns_(store_byte_ns),
      small_packet_penalty_ns_(small_packet_penalty_ns) {}

void McInterface::io_write(std::uint64_t io_offset, const void* src, std::size_t len,
                           TrafficClass cls) {
  traffic_.add(cls, len);
  clk_->advance(store_base_ns_ +
                static_cast<SimTime>(static_cast<double>(len) * store_byte_ns_));
  wbufs_.store(io_offset, src, len);
}

void McInterface::on_packet(const Packet& pkt) {
  if (pkt.len < kWriteBufferBytes) clk_->advance(small_packet_penalty_ns_);
  const SimTime now = clk_->now();
  // Retire adapter FIFO entries whose packets have already left.
  while (!fifo_.empty() && fifo_.front() <= now) fifo_.pop_front();
  if (fifo_.size() >= fifo_depth_) {
    // Adapter full: the CPU stalls until the oldest queued packet departs.
    const SimTime resume = fifo_.front();
    static metrics::Counter& stall_events = metrics::counter("sim.mc.fifo_stalls");
    static metrics::Counter& stall_ns = metrics::counter("sim.mc.fifo_stall_ns");
    stall_events.add(1);
    stall_ns.add(static_cast<std::uint64_t>(resume - now));
    stall_ns_ += resume - now;
    clk_->advance_to(resume);
    fifo_.pop_front();
  }
  static metrics::Counter& packets = metrics::counter("sim.mc.packets");
  static metrics::Counter& packet_bytes = metrics::counter("sim.mc.packet_bytes");
  packets.add(1);
  packet_bytes.add(pkt.len);
  fabric_->count_packet(pkt);
  const SimTime completion =
      fabric_->link().serve(clk_->now(), fabric_->model().packet_time(pkt.len));
  fifo_.push_back(completion);
  fabric_->submit(pkt, completion + fabric_->model().propagation_ns);
}

void McInterface::flush() { wbufs_.flush_all(); }

void McInterface::drop_pending() {
  // Discard buffered stores by swapping in a fresh buffer set; queued adapter
  // packets were already submitted to the fabric (the fabric's crash handling
  // decides their fate based on delivery time).
  wbufs_ = WriteBufferSet([this](const Packet& pkt) { on_packet(pkt); });
  fifo_.clear();
}

}  // namespace vrep::sim
