// Model of the Alpha 21164A's six 32-byte write buffers.
//
// Section 2.3 of the paper: "The Alpha chip has 6 32-byte write buffers.
// Contiguous stores share a write buffer and are flushed to the system bus
// together. The Memory Channel interface simply converts the PCI write to a
// similar-size Memory Channel packet ... so the maximum packet size supported
// by the system as a whole is 32 bytes."
//
// This is the mechanism behind the paper's central result: versions whose
// I/O-space writes are contiguous coalesce into 32-byte packets and enjoy the
// full 80 MB/s, while scattered 4-byte writes pay the per-packet overhead on
// every word and see ~14 MB/s.
//
// We model: stores to I/O space land in the buffer covering their 32-byte
// aligned block (merging with previous stores); a buffer is flushed as one or
// more packets (one per contiguous run of valid bytes) when (a) it becomes
// completely full, (b) all six buffers are busy and a new block needs one
// (oldest is evicted), or (c) an explicit flush/barrier is executed (commit).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>

#include "sim/clock.hpp"

namespace vrep::sim {

constexpr std::size_t kWriteBufferBytes = 32;
constexpr std::size_t kNumWriteBuffers = 6;

// One Memory Channel packet: up to 32 contiguous bytes at an I/O-space offset.
struct Packet {
  std::uint64_t io_offset = 0;
  std::uint32_t len = 0;
  std::array<std::uint8_t, kWriteBufferBytes> data{};
};

class WriteBufferSet {
 public:
  using PacketSink = std::function<void(const Packet&)>;

  // `coalescing` false models hardware without merging write buffers: every
  // store drains immediately as its own packet (the ablation in
  // bench/ablation_coalescing.cpp).
  explicit WriteBufferSet(PacketSink sink, bool coalescing = true)
      : coalescing_(coalescing), sink_(std::move(sink)) {}

  // Store `len` bytes at I/O-space offset `io_offset`. May emit packets via
  // the sink (evictions / full buffers).
  void store(std::uint64_t io_offset, const void* src, std::size_t len);

  // Drain every buffer (memory barrier before advancing a commit flag).
  void flush_all();

  std::uint64_t packets_emitted() const { return packets_emitted_; }

 private:
  struct Buffer {
    bool valid = false;
    std::uint64_t block = 0;  // io_offset / 32
    std::uint32_t mask = 0;   // bit i set => byte i valid
    std::uint64_t age = 0;    // allocation order, for oldest-first eviction
    std::array<std::uint8_t, kWriteBufferBytes> data{};
  };

  void store_within_block(std::uint64_t io_offset, const std::uint8_t* src, std::size_t len);
  void flush(Buffer& b);

  bool coalescing_ = true;
  std::array<Buffer, kNumWriteBuffers> buffers_{};
  std::uint64_t next_age_ = 0;
  std::uint64_t packets_emitted_ = 0;
  PacketSink sink_;
};

}  // namespace vrep::sim
