#include "exec/smp_executor.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace vrep::exec {

// ---------------------------------------------------------------------------
// Partition capture sink
// ---------------------------------------------------------------------------

void SmpExecutor::Partition::on_captured_store(std::uint64_t off, const void* src,
                                               std::size_t len) {
  // Called with this partition's latch held (the capture window only covers
  // this partition's db region, written by the latched workload txn).
  TxnRecord* rec = current;
  VREP_DCHECK(rec != nullptr);
  if (rec == nullptr) return;  // capture outside a worker txn: nothing to ship
  const std::uint64_t global = base + off;
  if (!rec->spans.empty()) {
    auto& last = rec->spans.back();
    if (last.first + last.second == global) {
      // Contiguous with the previous store (a set_range's writes arrive back
      // to back): extend the span instead of growing the table.
      last.second += static_cast<std::uint32_t>(len);
      const auto* p = static_cast<const std::uint8_t*>(src);
      rec->bytes.insert(rec->bytes.end(), p, p + len);
      return;
    }
  }
  rec->spans.emplace_back(global, static_cast<std::uint32_t>(len));
  const auto* p = static_cast<const std::uint8_t*>(src);
  rec->bytes.insert(rec->bytes.end(), p, p + len);
}

// ---------------------------------------------------------------------------
// StagingQueue
// ---------------------------------------------------------------------------

void SmpExecutor::StagingQueue::push(TxnRecord* record) {
  std::unique_lock<std::mutex> lock(mu_);
  if (q_.size() >= capacity_) {
    ++full_waits_;
    can_push_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
  }
  VREP_CHECK(!closed_);  // producers are joined before close()
  q_.push_back(record);
  can_pop_.notify_one();
}

SmpExecutor::TxnRecord* SmpExecutor::StagingQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock, [&] { return !q_.empty() || closed_; });
  if (q_.empty()) return nullptr;
  TxnRecord* record = q_.front();
  q_.pop_front();
  can_push_.notify_one();
  return record;
}

void SmpExecutor::StagingQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  can_pop_.notify_all();
  can_push_.notify_all();
}

std::uint64_t SmpExecutor::StagingQueue::full_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return full_waits_;
}

// ---------------------------------------------------------------------------
// SmpExecutor
// ---------------------------------------------------------------------------

SmpExecutor::SmpExecutor(const SmpConfig& config, repl::ReplicationLink* link)
    : config_(config),
      stride_(config.partition_db_size),
      queue_(config.queue_capacity == 0 ? 1 : config.queue_capacity),
      pipeline_(*this, link) {
  VREP_CHECK(config_.workers >= 1);
  if (config_.partitions == 0) config_.partitions = config_.workers * 2;
  partitions_.reserve(config_.partitions);
  for (unsigned p = 0; p < config_.partitions; ++p) {
    auto part = std::make_unique<Partition>();
    core::StoreConfig store_cfg = wl::suggest_config(config_.workload, stride_);
    store_cfg.db_size = stride_;
    part->arena = rio::Arena::create(
        core::required_arena_size(core::VersionKind::kV3InlineLog, store_cfg));
    part->store = std::make_unique<core::InlineLogStore>(part->bus, part->arena,
                                                         store_cfg, /*format=*/true);
    part->workload = wl::make_workload(config_.workload, stride_);
    part->workload->initialize(*part->store);
    part->store->flush_initial_state();
    part->base = static_cast<std::uint64_t>(p) * stride_;
    // Capture from here on: the initial image ships via sync_backup(), only
    // transaction writes become redo.
    part->bus.set_capture(part->store->db(), stride_, part.get());
    partitions_.push_back(std::move(part));
  }
  pipeline_.set_two_safe(config_.two_safe);
  pipeline_.set_quorum(config_.quorum);
  pipeline_.set_commit_window(config_.commit_window);
  pipeline_.set_group_size(config_.group_size);
  // Pre-size the record pool to the queue depth plus one in-flight record
  // per worker, so the steady state never allocates.
  std::lock_guard<std::mutex> lock(free_mu_);
  for (std::size_t i = 0; i < config_.queue_capacity + config_.workers + 1; ++i) {
    records_.push_back(std::make_unique<TxnRecord>());
    free_.push_back(records_.back().get());
  }
}

SmpExecutor::~SmpExecutor() = default;

const std::uint8_t* SmpExecutor::db() const {
  // Gathering partitions into one contiguous image is only coherent while no
  // worker can write: before run() (seeding backups) or after it returned
  // (final sync, rejoins, checkpoints).
  VREP_CHECK(quiesced_.load(std::memory_order_acquire));
  image_.resize(db_size());
  for (const auto& part : partitions_) {
    std::memcpy(image_.data() + part->base, part->store->db(), stride_);
  }
  return image_.data();
}

std::size_t SmpExecutor::db_size() const { return stride_ * partitions_.size(); }

SmpExecutor::TxnRecord* SmpExecutor::acquire_record() {
  std::lock_guard<std::mutex> lock(free_mu_);
  if (free_.empty()) {
    records_.push_back(std::make_unique<TxnRecord>());
    return records_.back().get();
  }
  TxnRecord* record = free_.back();
  free_.pop_back();
  return record;
}

void SmpExecutor::release_record(TxnRecord* record) {
  std::lock_guard<std::mutex> lock(free_mu_);
  free_.push_back(record);
}

void SmpExecutor::worker_main(unsigned index) {
  // Distinct deterministic stream per worker; the partition pick and the
  // workload's own randomness both draw from it.
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + index + 1);
  const std::size_t nparts = partitions_.size();
  for (std::uint64_t i = 0; i < config_.txns_per_worker; ++i) {
    Partition& part = *partitions_[rng.next_u32() % nparts];
    TxnRecord* rec = acquire_record();
    rec->clear();
    core::LatchGuard guard(part.latch);
    part.current = rec;
    part.workload->run_txn(*part.store, rng);
    part.current = nullptr;
    // Enqueue before releasing the latch: the global queue order is then a
    // linearization of this partition's commit order, so the backup applies
    // overlapping writes in the order they committed. push() may block on a
    // full queue — holding the latch while blocked is safe (the sequencer
    // drains the queue and never takes latches).
    queue_.push(rec);
  }
}

void SmpExecutor::sequencer_main() {
  // The lone writer into the pipeline: replays each record's captured spans
  // as staged redo and commits it under the next global sequence. 2-safe
  // window stalls block here; the bounded queue relays the backpressure to
  // the workers.
  while (TxnRecord* rec = queue_.pop()) {
    pipeline_.begin();
    const std::uint8_t* p = rec->bytes.data();
    for (const auto& [off, len] : rec->spans) {
      pipeline_.stage(off, p, len);
      p += len;
    }
    const std::uint64_t seq = committed_.load(std::memory_order_relaxed) + 1;
    // Publish before commit_async: the pipeline reads Source::committed_seq
    // on its commit path (shipped watermark), expecting the local commit to
    // precede it — same order as WirePrimary.
    committed_.store(seq, std::memory_order_release);
    pipeline_.commit_async(seq);
    release_record(rec);
  }
}

SmpExecutor::Result SmpExecutor::run() {
  VREP_CHECK(!ran_);
  ran_ = true;
  quiesced_.store(false, std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread sequencer([this] { sequencer_main(); });
  std::vector<std::thread> workers;
  workers.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workers.emplace_back([this, w] { worker_main(w); });
  }
  for (auto& t : workers) t.join();
  queue_.close();
  sequencer.join();
  // Resolve everything still in flight (ship a partial group, wait out the
  // 2-safe window) so `committed` below is fully replicated.
  pipeline_.sync();
  const auto t1 = std::chrono::steady_clock::now();
  quiesced_.store(true, std::memory_order_release);

  Result r;
  r.committed = committed_.load(std::memory_order_acquire);
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.tps = r.seconds > 0 ? static_cast<double>(r.committed) / r.seconds : 0;
  for (const auto& part : partitions_) r.latch_contended += part->latch.contended();
  r.queue_full_waits = queue_.full_waits();
  metrics::counter("exec.smp.txns_committed").add(r.committed);
  metrics::counter("exec.smp.latch_contended").add(r.latch_contended);
  metrics::counter("exec.smp.queue_full_waits").add(r.queue_full_waits);
  return r;
}

std::string SmpExecutor::check_consistency() const {
  VREP_CHECK(quiesced_.load(std::memory_order_acquire));
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    const std::string err = partitions_[p]->workload->check_consistency(*partitions_[p]->store);
    if (!err.empty()) {
      return "partition " + std::to_string(p) + ": " + err;
    }
  }
  return "";
}

}  // namespace vrep::exec
