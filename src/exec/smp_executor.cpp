#include "exec/smp_executor.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace vrep::exec {

// ---------------------------------------------------------------------------
// Partition capture sink
// ---------------------------------------------------------------------------

void SmpExecutor::Partition::on_captured_store(std::uint64_t off, const void* src,
                                               std::size_t len) {
  // Called with this partition's latch held (the capture window only covers
  // this partition's db region, written by the latched workload txn).
  TxnRecord* rec = current;
  VREP_DCHECK(rec != nullptr);
  if (rec == nullptr) return;  // capture outside a worker txn: nothing to ship
  const std::uint64_t global = base + off;
  if (!rec->spans.empty()) {
    auto& last = rec->spans.back();
    if (last.first + last.second == global) {
      // Contiguous with the previous store (a set_range's writes arrive back
      // to back): extend the span instead of growing the table.
      last.second += static_cast<std::uint32_t>(len);
      const auto* p = static_cast<const std::uint8_t*>(src);
      rec->bytes.insert(rec->bytes.end(), p, p + len);
      return;
    }
  }
  rec->spans.emplace_back(global, static_cast<std::uint32_t>(len));
  const auto* p = static_cast<const std::uint8_t*>(src);
  rec->bytes.insert(rec->bytes.end(), p, p + len);
}

// ---------------------------------------------------------------------------
// StagingQueue
// ---------------------------------------------------------------------------

void SmpExecutor::StagingQueue::push(TxnRecord* record) {
  std::unique_lock<std::mutex> lock(mu_);
  if (q_.size() >= capacity_) {
    ++full_waits_;
    can_push_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
  }
  VREP_CHECK(!closed_);  // producers are joined before close()
  q_.push_back(record);
  can_pop_.notify_one();
}

SmpExecutor::TxnRecord* SmpExecutor::StagingQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock, [&] { return !q_.empty() || closed_; });
  if (q_.empty()) return nullptr;
  TxnRecord* record = q_.front();
  q_.pop_front();
  can_push_.notify_one();
  return record;
}

void SmpExecutor::StagingQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  can_pop_.notify_all();
  can_push_.notify_all();
}

std::uint64_t SmpExecutor::StagingQueue::full_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return full_waits_;
}

// ---------------------------------------------------------------------------
// SmpExecutor
// ---------------------------------------------------------------------------

SmpExecutor::SmpExecutor(const SmpConfig& config, repl::ReplicationLink* link)
    : config_(config), stride_(config.partition_db_size) {
  VREP_CHECK(config_.workers >= 1);
  VREP_CHECK(config_.sequencer_shards >= 1);
  // Per-group replication is wired through group_pipeline(); the
  // constructor's single link only makes sense with a single group.
  VREP_CHECK(link == nullptr || config_.sequencer_shards == 1);
  if (config_.partitions == 0) config_.partitions = config_.workers * 2;
  VREP_CHECK(config_.partitions % config_.sequencer_shards == 0 &&
             "shard groups must divide the partition count");
  partitions_per_group_ = config_.partitions / config_.sequencer_shards;
  partitions_.reserve(config_.partitions);
  for (unsigned p = 0; p < config_.partitions; ++p) {
    auto part = std::make_unique<Partition>();
    core::StoreConfig store_cfg = wl::suggest_config(config_.workload, stride_);
    store_cfg.db_size = stride_;
    part->arena = rio::Arena::create(
        core::required_arena_size(core::VersionKind::kV3InlineLog, store_cfg));
    part->store = std::make_unique<core::InlineLogStore>(part->bus, part->arena,
                                                         store_cfg, /*format=*/true);
    part->workload = wl::make_workload(config_.workload, stride_);
    part->workload->initialize(*part->store);
    part->store->flush_initial_state();
    part->base = static_cast<std::uint64_t>(p % partitions_per_group_) * stride_;
    // Capture from here on: the initial image ships via sync_backup(), only
    // transaction writes become redo.
    part->bus.set_capture(part->store->db(), stride_, part.get());
    partitions_.push_back(std::move(part));
  }
  groups_.reserve(config_.sequencer_shards);
  for (unsigned g = 0; g < config_.sequencer_shards; ++g) {
    auto group = std::make_unique<ShardGroup>();
    group->owner = this;
    group->first_partition = static_cast<std::size_t>(g) * partitions_per_group_;
    group->partition_count = partitions_per_group_;
    group->queue = std::make_unique<StagingQueue>(
        config_.queue_capacity == 0 ? 1 : config_.queue_capacity);
    group->pipeline =
        std::make_unique<repl::RedoPipeline>(*group, g == 0 ? link : nullptr);
    group->pipeline->set_two_safe(config_.two_safe);
    group->pipeline->set_quorum(config_.quorum);
    group->pipeline->set_commit_window(config_.commit_window);
    group->pipeline->set_group_size(config_.group_size);
    groups_.push_back(std::move(group));
  }
  // Pre-size the record pool to the queue depth plus one in-flight record
  // per worker, so the steady state never allocates.
  std::lock_guard<std::mutex> lock(free_mu_);
  for (std::size_t i = 0;
       i < config_.queue_capacity * groups_.size() + config_.workers + 1; ++i) {
    records_.push_back(std::make_unique<TxnRecord>());
    free_.push_back(records_.back().get());
  }
}

SmpExecutor::~SmpExecutor() = default;

const std::uint8_t* SmpExecutor::ShardGroup::db() const {
  // Gathering partitions into one contiguous image is only coherent while no
  // worker can write: before run() (seeding backups) or after it returned
  // (final sync, rejoins, checkpoints).
  VREP_CHECK(owner->quiesced_.load(std::memory_order_acquire));
  image.resize(db_size());
  for (std::size_t i = 0; i < partition_count; ++i) {
    const auto& part = owner->partitions_[first_partition + i];
    std::memcpy(image.data() + part->base, part->store->db(), owner->stride_);
  }
  return image.data();
}

bool SmpExecutor::sync_backup() {
  VREP_CHECK(groups_.size() == 1);
  return groups_.front()->pipeline->sync_backup();
}

repl::RedoPipeline& SmpExecutor::pipeline() {
  VREP_CHECK(groups_.size() == 1);
  return *groups_.front()->pipeline;
}

repl::RedoPipeline& SmpExecutor::group_pipeline(unsigned group) {
  return *groups_.at(group)->pipeline;
}

std::uint64_t SmpExecutor::sequenced() const {
  std::uint64_t total = 0;
  for (const auto& g : groups_) total += g->committed.load(std::memory_order_acquire);
  return total;
}

std::uint64_t SmpExecutor::group_sequenced(unsigned group) const {
  return groups_.at(group)->committed.load(std::memory_order_acquire);
}

const std::uint8_t* SmpExecutor::image() const {
  VREP_CHECK(quiesced_.load(std::memory_order_acquire));
  image_.resize(image_size());
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    std::memcpy(image_.data() + p * stride_, partitions_[p]->store->db(), stride_);
  }
  return image_.data();
}

SmpExecutor::TxnRecord* SmpExecutor::acquire_record() {
  std::lock_guard<std::mutex> lock(free_mu_);
  if (free_.empty()) {
    records_.push_back(std::make_unique<TxnRecord>());
    return records_.back().get();
  }
  TxnRecord* record = free_.back();
  free_.pop_back();
  return record;
}

void SmpExecutor::release_record(TxnRecord* record) {
  std::lock_guard<std::mutex> lock(free_mu_);
  free_.push_back(record);
}

void SmpExecutor::worker_main(unsigned index) {
  // Distinct deterministic stream per worker; the partition pick and the
  // workload's own randomness both draw from it.
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + index + 1);
  const std::size_t nparts = partitions_.size();
  for (std::uint64_t i = 0; i < config_.txns_per_worker; ++i) {
    const std::uint32_t draw = rng.next_u32();  // same stream with or without route
    const std::size_t pi = config_.route ? config_.route(draw, nparts) % nparts
                                         : draw % nparts;
    Partition& part = *partitions_[pi];
    ShardGroup& group = *groups_[pi / partitions_per_group_];
    TxnRecord* rec = acquire_record();
    rec->clear();
    core::LatchGuard guard(part.latch);
    part.current = rec;
    part.workload->run_txn(*part.store, rng);
    part.current = nullptr;
    // Enqueue before releasing the latch: the group's queue order is then a
    // linearization of this partition's commit order, so the backup applies
    // overlapping writes to each record in the order they committed. push()
    // may block on a full queue — holding the latch while blocked is safe
    // (the sequencers drain the queues and never take latches).
    group.queue->push(rec);
  }
}

void SmpExecutor::sequencer_main(ShardGroup& group) {
  // The lone writer into this group's pipeline: replays each record's
  // captured spans as staged redo and commits it under the group's next
  // sequence. 2-safe window stalls block here; the bounded queue relays the
  // backpressure to the workers.
  repl::RedoPipeline& pipeline = *group.pipeline;
  while (TxnRecord* rec = group.queue->pop()) {
    pipeline.begin();
    const std::uint8_t* p = rec->bytes.data();
    for (const auto& [off, len] : rec->spans) {
      pipeline.stage(off, p, len);
      p += len;
    }
    const std::uint64_t seq = group.committed.load(std::memory_order_relaxed) + 1;
    // Publish before commit_async: the pipeline reads Source::committed_seq
    // on its commit path (shipped watermark), expecting the local commit to
    // precede it — same order as WirePrimary.
    group.committed.store(seq, std::memory_order_release);
    pipeline.commit_async(seq);
    release_record(rec);
  }
}

SmpExecutor::Result SmpExecutor::run() {
  VREP_CHECK(!ran_);
  ran_ = true;
  quiesced_.store(false, std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> sequencers;
  sequencers.reserve(groups_.size());
  for (auto& group : groups_) {
    sequencers.emplace_back([this, g = group.get()] { sequencer_main(*g); });
  }
  std::vector<std::thread> workers;
  workers.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workers.emplace_back([this, w] { worker_main(w); });
  }
  for (auto& t : workers) t.join();
  for (auto& group : groups_) group->queue->close();
  for (auto& t : sequencers) t.join();
  // Resolve everything still in flight (ship a partial group, wait out the
  // 2-safe window) so `committed` below is fully replicated.
  for (auto& group : groups_) group->pipeline->sync();
  const auto t1 = std::chrono::steady_clock::now();
  quiesced_.store(true, std::memory_order_release);

  Result r;
  r.committed = sequenced();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.tps = r.seconds > 0 ? static_cast<double>(r.committed) / r.seconds : 0;
  for (const auto& part : partitions_) r.latch_contended += part->latch.contended();
  for (const auto& group : groups_) r.queue_full_waits += group->queue->full_waits();
  metrics::counter("exec.smp.txns_committed").add(r.committed);
  metrics::counter("exec.smp.latch_contended").add(r.latch_contended);
  metrics::counter("exec.smp.queue_full_waits").add(r.queue_full_waits);
  return r;
}

std::string SmpExecutor::check_consistency() const {
  VREP_CHECK(quiesced_.load(std::memory_order_acquire));
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    const std::string err = partitions_[p]->workload->check_consistency(*partitions_[p]->store);
    if (!err.empty()) {
      return "partition " + std::to_string(p) + ": " + err;
    }
  }
  return "";
}

}  // namespace vrep::exec
