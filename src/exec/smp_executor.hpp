// The real SMP primary (paper Figs 2-3, on actual hardware threads).
//
// The virtual-time harness reproduces the paper's 4-CPU scaling curves
// through sim::CacheModel; this executor produces the same shape with real
// std::thread workers on wall-clock time:
//
//   workers (N threads)                 sequencer (1 thread)
//   ─────────────────────               ───────────────────────────
//   pick a partition                    pop TxnRecord (commit order)
//   acquire its core::Latch             pipeline.begin()
//   run one workload txn                pipeline.stage(...) per span
//   (bus capture -> TxnRecord)          pipeline.commit_async(++seq)
//   enqueue record, release   ──queue─▶ recycle record
//
// The database is partitioned: each partition is an independent Version 3
// store + workload instance over its own pass-through MemBus, mapped at
// global offset `partition_index * partition_db_size`. Workers latch a
// partition for the duration of one transaction; the store's write capture
// (the same mechanism WirePrimary uses) globalizes the redo offsets into a
// thread-owned TxnRecord. Records are handed to the sequencer through a
// bounded MPSC queue — the enqueue happens while the partition latch is
// still held, so the queue order is a linearization of every partition's
// commit order and the backup replays writes to each record in commit
// order.
//
// A sequencer is the ONLY thread that touches its RedoPipeline and link
// (each pipeline stays single-writer; no protocol changes). Group commit
// and the bounded in-flight ack window (PR 5) are the natural backpressure:
// a 2-safe window stall blocks the sequencer, the bounded queue then blocks
// the workers.
//
// Sharding (sequencer_shards > 1): the partitions split into contiguous
// SHARD GROUPS, one sequencer thread + one RedoPipeline + one staging queue
// per group — the executor-side mirror of shard::ShardMap's partitioned
// multi-primary. Redo offsets and the replicated image are group-relative
// (each group is its own store region with its own sequence numbering), so
// one group's commit stream never orders against another's. The default
// (1) reproduces the single-sequencer executor exactly: same RNG streams,
// same partition picks, same queue order, same global sequence.
//
// Threading contract (what the TSan preset verifies):
//   * a partition's store/workload/bus/current-record pointer are touched
//     only under its Latch, or by the owner before run() / after run();
//   * TxnRecords travel worker -> queue -> sequencer -> freelist, with every
//     handoff under a mutex (release/acquire ordered bytes);
//   * the pipeline + link are confined to the sequencer thread while run()
//     is live, and to the owner when quiesced;
//   * cross-thread counters (committed sequence) are atomics.
//
// Rejoin/sync/checkpoint operations read Source::db(), which gathers the
// partitions into one contiguous image — valid only while quiesced (before
// run() or after it returns); db() CHECKs this.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/latch.hpp"
#include "core/v3_inline_log.hpp"
#include "repl/pipeline.hpp"
#include "rio/arena.hpp"
#include "sim/mem_bus.hpp"
#include "workload/workload.hpp"

namespace vrep::exec {

struct SmpConfig {
  wl::WorkloadKind workload = wl::WorkloadKind::kDebitCredit;
  unsigned workers = 1;
  // Independent store partitions; 0 = 2x workers (random placement keeps
  // latch collisions moderate). Fewer partitions than workers forces
  // contention — useful in tests.
  unsigned partitions = 0;
  // Each partition's database region; the replicated image is the
  // concatenation of the partitions (partition p at offset p * this).
  std::size_t partition_db_size = 2u << 20;
  std::uint64_t txns_per_worker = 10'000;
  // Replication knobs, applied to the pipeline (ignored without a link).
  bool two_safe = false;
  unsigned quorum = 1;
  unsigned commit_window = 1;
  unsigned group_size = 1;
  // Staged-but-unsequenced transactions before workers block (backpressure
  // relayed from the sequencer / the 2-safe ack window). Per shard group.
  std::size_t queue_capacity = 256;
  std::uint64_t seed = 1;
  // Shard groups: contiguous partition ranges, one sequencer + pipeline
  // each. Must divide the partition count. >1 requires a null link (per-
  // group replication attaches per-group links via group_pipeline()).
  unsigned sequencer_shards = 1;
  // Partition routing hook: maps the worker's per-txn draw to a partition
  // index (result is taken mod `partitions`). Null keeps the historical
  // `draw % partitions` placement byte-for-byte — the draw itself is the
  // same single RNG pull either way, so plugging in a router (e.g. one that
  // follows a shard::ShardMap the way a rebalance would re-home clients)
  // perturbs placement only, never the workload streams.
  std::function<std::size_t(std::uint32_t draw, std::size_t partitions)> route;
};

class SmpExecutor final {
 public:
  // `link` may be null (no replication: the pipeline sequences into history
  // only) and is only accepted with a single shard group. The executor
  // seeds every partition's workload at construction.
  SmpExecutor(const SmpConfig& config, repl::ReplicationLink* link);
  ~SmpExecutor();
  SmpExecutor(const SmpExecutor&) = delete;
  SmpExecutor& operator=(const SmpExecutor&) = delete;

  struct Result {
    std::uint64_t committed = 0;
    double seconds = 0;
    double tps = 0;
    std::uint64_t latch_contended = 0;   // worker found a partition latch held
    std::uint64_t queue_full_waits = 0;  // worker blocked on the full queue
  };

  // Ship the current image + sequence to the attached backup (call before
  // run() to seed it; requires a quiesced executor, like every image read).
  // Single-group only, like the constructor's link.
  bool sync_backup();

  // Run workers x txns_per_worker transactions, drain the sequencer, then
  // pipeline.sync() so every commit is resolved (2-safe: quorum-covered).
  // Blocking; callable once.
  Result run();

  // Logical consistency of every partition's committed state (empty string
  // == consistent). Only valid while quiesced.
  std::string check_consistency() const;

  // Gathered contiguous image across every partition (what a whole-system
  // backup replicates; with shard groups, the concatenation of the group
  // images). Only valid while quiesced.
  const std::uint8_t* image() const;
  std::size_t image_size() const { return stride_ * partitions_.size(); }

  // Transactions sequenced across every shard group.
  std::uint64_t sequenced() const;
  unsigned partition_count() const { return static_cast<unsigned>(partitions_.size()); }
  unsigned shard_group_count() const { return static_cast<unsigned>(groups_.size()); }
  // The group's own sequence counter (its commit stream is independent).
  std::uint64_t group_sequenced(unsigned group) const;

  // Protocol engine — knobs and stats for tests/benches. Touch only while
  // quiesced (the sequencer owns it during run()). pipeline() is the
  // single-group spelling; group_pipeline(g) addresses a shard group.
  repl::RedoPipeline& pipeline();
  repl::RedoPipeline& group_pipeline(unsigned group);

 private:
  // One committed transaction's captured redo: concatenated payload bytes
  // plus {global offset, length} spans. Pooled and recycled so the steady
  // state allocates nothing per transaction.
  struct TxnRecord {
    std::vector<std::uint8_t> bytes;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> spans;
    void clear() {
      bytes.clear();
      spans.clear();
    }
  };

  // An independent store partition; it is its own capture sink so a store
  // write lands in the right record with a globalized offset. All fields are
  // guarded by `latch` while worker threads run (see the threading contract
  // above).
  struct Partition final : sim::MemBus::CaptureSink {
    rio::Arena arena;
    sim::MemBus bus;  // pass-through: wall-clock deployment, capture only
    std::unique_ptr<core::InlineLogStore> store;
    std::unique_ptr<wl::Workload> workload;
    core::Latch latch;
    std::uint64_t base = 0;  // offset of this partition inside its group's image
    TxnRecord* current = nullptr;   // record of the txn running under latch

    // Coalesces stores adjacent to the previous span (a set_range's writes
    // arrive back to back) so span overhead stays small on the wire.
    void on_captured_store(std::uint64_t off, const void* src, std::size_t len) override;
  };

  // Bounded MPSC handoff worker -> sequencer. close() releases the consumer
  // once the queue drains.
  class StagingQueue {
   public:
    explicit StagingQueue(std::size_t capacity) : capacity_(capacity) {}
    void push(TxnRecord* record);  // blocks while full
    TxnRecord* pop();              // blocks; nullptr once closed and drained
    void close();
    std::uint64_t full_waits() const;  // call after the threads are joined

   private:
    mutable std::mutex mu_;
    std::condition_variable can_push_;
    std::condition_variable can_pop_;
    std::deque<TxnRecord*> q_;
    std::size_t capacity_;
    std::uint64_t full_waits_ = 0;
    bool closed_ = false;
  };

  // One shard group: a contiguous partition range with its own staging
  // queue, sequence counter, RedoPipeline and sequencer thread. Its Source
  // image is the group's partitions gathered at group-relative offsets
  // (partition bases are group-relative too, so staged redo lands inside
  // the group image).
  struct ShardGroup final : repl::RedoPipeline::Source {
    SmpExecutor* owner = nullptr;
    std::size_t first_partition = 0;
    std::size_t partition_count = 0;
    std::unique_ptr<StagingQueue> queue;
    std::atomic<std::uint64_t> committed{0};
    mutable std::vector<std::uint8_t> image;  // gather buffer for db()
    std::unique_ptr<repl::RedoPipeline> pipeline;  // last-ish: over *this

    const std::uint8_t* db() const override;
    std::size_t db_size() const override { return owner->stride_ * partition_count; }
    std::uint64_t committed_seq() const override {
      return committed.load(std::memory_order_acquire);
    }
  };

  void worker_main(unsigned index);
  void sequencer_main(ShardGroup& group);
  TxnRecord* acquire_record();
  void release_record(TxnRecord* record);

  SmpConfig config_;
  std::size_t stride_;  // == config_.partition_db_size
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<std::unique_ptr<ShardGroup>> groups_;
  std::size_t partitions_per_group_ = 0;
  std::mutex free_mu_;
  std::vector<std::unique_ptr<TxnRecord>> records_;  // owns every record
  std::vector<TxnRecord*> free_;
  std::atomic<bool> quiesced_{true};
  bool ran_ = false;
  mutable std::vector<std::uint8_t> image_;  // gather buffer for image()
};

}  // namespace vrep::exec
