#include "workload/workload.hpp"

#include "util/check.hpp"
#include "workload/debit_credit.hpp"
#include "workload/order_entry.hpp"

namespace vrep::wl {

const char* workload_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kDebitCredit:
      return "Debit-Credit";
    case WorkloadKind::kOrderEntry:
      return "Order-Entry";
  }
  return "unknown";
}

std::unique_ptr<Workload> make_workload(WorkloadKind kind, std::size_t db_size) {
  switch (kind) {
    case WorkloadKind::kDebitCredit:
      return std::make_unique<DebitCredit>(db_size);
    case WorkloadKind::kOrderEntry:
      return std::make_unique<OrderEntry>(db_size);
  }
  VREP_CHECK(false && "bad WorkloadKind");
  return nullptr;
}

core::StoreConfig suggest_config(WorkloadKind kind, std::size_t db_size) {
  core::StoreConfig config;
  config.db_size = db_size;
  switch (kind) {
    case WorkloadKind::kDebitCredit:
      config.max_ranges_per_txn = 8;
      config.undo_log_capacity = 64 * 1024;
      config.heap_size = 4ull << 20;
      break;
    case WorkloadKind::kOrderEntry:
      config.max_ranges_per_txn = 16;
      config.undo_log_capacity = 256 * 1024;
      config.heap_size = 8ull << 20;
      break;
  }
  return config;
}

}  // namespace vrep::wl
