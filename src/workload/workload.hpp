// Benchmark workloads (paper Section 2.4).
//
// Both workloads are the Vista benchmark variants of the TPC suites:
//  * Debit-Credit — TPC-B-like banking: each transaction updates a random
//    account, its teller and branch, and appends a history record to a 2 MB
//    in-memory circular audit trail.
//  * Order-Entry — TPC-C-like wholesale supplier, using the three
//    database-updating transaction types (New-Order, Payment, Delivery).
//
// Transactions are issued sequentially and as fast as possible, with no
// terminal I/O, to isolate the transaction system itself.
//
// A workload owns the database *layout* within the store's flat db region
// and performs every access through the store's MemBus so application
// writes are charged and replicated exactly like the store's own.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/api.hpp"
#include "util/rng.hpp"

namespace vrep::wl {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;

  // Populate the database with its initial contents (not on a measured path;
  // issued through the bus of a formatted store, outside any transaction —
  // initial state needs no atomicity).
  virtual void initialize(core::TransactionStore& store) = 0;

  // Execute exactly one transaction (begin..commit) against the store.
  virtual void run_txn(core::TransactionStore& store, Rng& rng) = 0;

  // Logical-consistency check of the *committed* database state; returns an
  // empty string when consistent, else a description of the violation. Used
  // by recovery/takeover tests.
  virtual std::string check_consistency(const core::TransactionStore& store) const = 0;
};

enum class WorkloadKind { kDebitCredit, kOrderEntry };

const char* workload_name(WorkloadKind k);

// Factory; the workload adapts its table sizes to db_size.
std::unique_ptr<Workload> make_workload(WorkloadKind kind, std::size_t db_size);

// Store configuration suited to this workload (range capacity, log sizes).
core::StoreConfig suggest_config(WorkloadKind kind, std::size_t db_size);

}  // namespace vrep::wl
