#include "workload/debit_credit.hpp"

#include <cstring>

#include "util/check.hpp"

namespace vrep::wl {

using sim::TrafficClass;

DebitCredit::DebitCredit(std::size_t db_size) : db_size_(db_size) {
  // TPC-B scaling: 10 tellers and 1 branch per 10 tellers; accounts fill the
  // space that remains after the audit trail.
  history_bytes_ = std::min<std::size_t>(2ull << 20, db_size / 4);
  const std::size_t records_budget = db_size - history_bytes_;
  // ~90% of record space for accounts; TPC-B ratios of 1 branch : 10
  // tellers : 100k accounts below that.
  num_accounts_ = records_budget * 9 / 10 / kRecordBytes;
  num_branches_ = std::max<std::size_t>(1, num_accounts_ / 100'000);
  num_tellers_ = 10 * num_branches_;
  VREP_CHECK(num_accounts_ > 0);

  accounts_off_ = 0;
  tellers_off_ = accounts_off_ + num_accounts_ * kRecordBytes;
  branches_off_ = tellers_off_ + num_tellers_ * kRecordBytes;
  history_off_ = db_size - history_bytes_;
  VREP_CHECK(branches_off_ + num_branches_ * kRecordBytes <= history_off_);
}

void DebitCredit::initialize(core::TransactionStore& store) {
  // All balances start at zero; the arena is already zero-filled, so only
  // non-zero fields would need explicit initialisation. Touch nothing: the
  // consistency invariant (equal sums) holds for the all-zero state.
  (void)store;
}

DebitCredit::TxnPlan DebitCredit::plan_txn(Rng& rng) const {
  TxnPlan plan;
  plan.account = static_cast<std::uint32_t>(rng.below(num_accounts_));
  plan.teller = static_cast<std::uint32_t>(rng.below(num_tellers_));
  // A teller belongs to a branch, as in TPC-B.
  plan.branch = static_cast<std::uint32_t>(plan.teller % num_branches_);
  plan.amount = static_cast<std::int32_t>(rng.range(-999'999, 999'999) | 1);
  return plan;
}

void DebitCredit::run_txn(core::TransactionStore& store, Rng& rng) {
  sim::MemBus& bus = store.bus();
  std::uint8_t* db = store.db();

  const TxnPlan plan = plan_txn(rng);
  const std::uint32_t account = plan.account;
  const std::uint32_t teller = plan.teller;
  const std::uint32_t branch = plan.branch;
  const std::int32_t amount = plan.amount;

  core::Transaction txn(store);
  for (const std::size_t off :
       {account_off(account), teller_off(teller), branch_off(branch)}) {
    std::uint8_t* rec = db + off;
    txn.set_range(rec, kRangeBytes);
    std::int32_t balance;
    bus.read(rec, sizeof balance);
    std::memcpy(&balance, rec, sizeof balance);
    balance += amount;
    bus.write(rec, &balance, sizeof balance, TrafficClass::kModified);
  }

  // Append to the audit trail; the slot derives from the commit sequence.
  const std::size_t slots = history_bytes_ / sizeof(HistoryRecord);
  const std::size_t slot = static_cast<std::size_t>(store.committed_seq()) % slots;
  std::uint8_t* hist = db + history_off_ + slot * sizeof(HistoryRecord);
  txn.set_range(hist, sizeof(HistoryRecord));
  const HistoryRecord rec{account, teller, branch, amount};
  bus.write(hist, &rec, sizeof rec, TrafficClass::kModified);

  txn.commit();
}

DebitCredit::BalanceSums DebitCredit::balance_sums(const std::uint8_t* db) const {
  auto sum_over = [&](std::size_t base, std::size_t n) {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int32_t v;
      std::memcpy(&v, db + base + i * kRecordBytes, sizeof v);
      sum += v;
    }
    return sum;
  };
  BalanceSums sums;
  sums.accounts = sum_over(accounts_off_, num_accounts_);
  sums.tellers = sum_over(tellers_off_, num_tellers_);
  sums.branches = sum_over(branches_off_, num_branches_);
  return sums;
}

std::string DebitCredit::check_consistency(const core::TransactionStore& store) const {
  const BalanceSums sums = balance_sums(store.db());
  if (sums.accounts != sums.tellers || sums.tellers != sums.branches) {
    return "balance sums diverge: accounts=" + std::to_string(sums.accounts) +
           " tellers=" + std::to_string(sums.tellers) +
           " branches=" + std::to_string(sums.branches);
  }
  return {};
}

}  // namespace vrep::wl
