// Debit-Credit: the Vista TPC-B variant.
//
// Database layout (within the store's flat db region):
//   [account records][teller records][branch records][2 MB history ring]
//
// Records are 100 bytes (TPC-B's record size); the balance and a few hot
// fields live in the first 16 bytes, which is what set_range covers — the
// paper's traffic tables imply ranges of roughly this size (undo volume
// ~2.3x the modified bytes for Debit-Credit).
//
// Each transaction:
//   set_range(account, 16);  balance += amount     (4-byte write)
//   set_range(teller, 16);   balance += amount     (4-byte write)
//   set_range(branch, 16);   balance += amount     (4-byte write)
//   set_range(history slot, 16); append a record    (16-byte write)
// The history slot index derives from the store's committed sequence number,
// so the ring cursor needs no separate persistent (and transactional) state.
//
// Consistency invariant used by recovery tests: the sum of account balances,
// the sum of teller balances and the sum of branch balances are all equal
// (every committed transaction adds the same amount to one record of each).
#pragma once

#include "workload/workload.hpp"

namespace vrep::wl {

class DebitCredit final : public Workload {
 public:
  static constexpr std::size_t kRecordBytes = 100;
  static constexpr std::size_t kRangeBytes = 16;  // hot prefix covered by set_range
  struct HistoryRecord {
    std::uint32_t account;
    std::uint32_t teller;
    std::uint32_t branch;
    std::int32_t amount;
  };
  static_assert(sizeof(HistoryRecord) == 16);

  explicit DebitCredit(std::size_t db_size);

  const char* name() const override { return "Debit-Credit"; }
  void initialize(core::TransactionStore& store) override;
  void run_txn(core::TransactionStore& store, Rng& rng) override;
  std::string check_consistency(const core::TransactionStore& store) const override;

  std::size_t num_accounts() const { return num_accounts_; }
  std::size_t num_tellers() const { return num_tellers_; }
  std::size_t num_branches() const { return num_branches_; }

  // ---- planning API (shard layer / external executors) --------------------
  // One transaction's randomized picks, drawn in exactly the order run_txn
  // draws them (so a plan-driven executor and run_txn are RNG-equivalent).
  struct TxnPlan {
    std::uint32_t account;
    std::uint32_t teller;
    std::uint32_t branch;
    std::int32_t amount;
  };
  TxnPlan plan_txn(Rng& rng) const;

  // The distributed variant's remote-branch mix (TPC-B's remote rule): true
  // when this transaction's account should be homed on a different shard.
  static bool draw_remote(Rng& rng, double remote_fraction) {
    return remote_fraction > 0 && rng.next_double() < remote_fraction;
  }

  // Record layout, exposed so executors that own raw database buffers (the
  // shard layer applies redo outside a TransactionStore) can compute the
  // same writes run_txn performs.
  std::size_t account_offset(std::size_t i) const { return account_off(i); }
  std::size_t teller_offset(std::size_t i) const { return teller_off(i); }
  std::size_t branch_offset(std::size_t i) const { return branch_off(i); }
  std::size_t history_slots() const { return history_bytes_ / sizeof(HistoryRecord); }
  // The audit-trail slot a transaction committing at `committed_seq + 1`
  // writes (run_txn derives it from the store's pre-commit sequence).
  std::size_t history_offset(std::uint64_t committed_seq) const {
    return history_off_ + (static_cast<std::size_t>(committed_seq) % history_slots()) *
                              sizeof(HistoryRecord);
  }

  // The consistency invariant's ingredients over a raw database image; a
  // sharded database is consistent when the three sums, each totalled
  // across every shard, are equal.
  struct BalanceSums {
    std::int64_t accounts = 0;
    std::int64_t tellers = 0;
    std::int64_t branches = 0;
  };
  BalanceSums balance_sums(const std::uint8_t* db) const;

 private:
  std::size_t account_off(std::size_t i) const { return accounts_off_ + i * kRecordBytes; }
  std::size_t teller_off(std::size_t i) const { return tellers_off_ + i * kRecordBytes; }
  std::size_t branch_off(std::size_t i) const { return branches_off_ + i * kRecordBytes; }

  std::size_t db_size_;
  std::size_t history_bytes_;
  std::size_t num_accounts_ = 0, num_tellers_ = 0, num_branches_ = 0;
  std::size_t accounts_off_ = 0, tellers_off_ = 0, branches_off_ = 0, history_off_ = 0;
};

}  // namespace vrep::wl
