// Order-Entry: the Vista TPC-C variant, restricted (as in the paper) to the
// three transaction types that update the database: New-Order, Payment, and
// Delivery, in the standard TPC-C mix (~45/43/12).
//
// Database layout (within the store's flat db region):
//   [warehouses][districts][customers][stock][order ring]
//
// Compared with Debit-Credit, transactions cover larger set_range areas
// (whole order-line arrays, 100-200 byte customer records) while modifying a
// modest number of scattered small fields inside them — which is exactly the
// traffic profile the paper reports for Order-Entry (undo volume ~5x the
// modified bytes, meta-data per transaction larger for the active scheme
// than the passive one because the modified chunks are discontiguous).
//
// Consistency invariant for recovery tests: for every warehouse,
//   warehouse.ytd == sum(district.ytd over its districts)
// and every order slot is either fully present (header.magic valid and the
// order-line count consistent) or untouched.
#pragma once

#include "workload/workload.hpp"

namespace vrep::wl {

class OrderEntry final : public Workload {
 public:
  explicit OrderEntry(std::size_t db_size);

  const char* name() const override { return "Order-Entry"; }
  void initialize(core::TransactionStore& store) override;
  void run_txn(core::TransactionStore& store, Rng& rng) override;
  std::string check_consistency(const core::TransactionStore& store) const override;

  std::size_t num_warehouses() const { return num_warehouses_; }
  std::size_t num_order_slots() const { return num_order_slots_; }

 private:
  static constexpr std::size_t kDistrictsPerWarehouse = 10;
  static constexpr std::size_t kCustomersPerDistrict = 3000;
  static constexpr std::size_t kMaxOrderLines = 15;

  struct Warehouse {  // 64 bytes
    std::int64_t ytd;
    char filler[56];
  };
  struct District {  // 64 bytes
    std::int64_t ytd;
    std::uint32_t next_o_id;
    char filler[52];
  };
  struct Customer {  // 192 bytes
    std::int64_t balance;
    std::int64_t ytd_payment;
    std::uint32_t payment_cnt;
    std::uint32_t delivery_cnt;
    char data[168];
  };
  struct StockItem {  // 64 bytes
    std::int32_t quantity;
    std::int32_t order_cnt;
    char filler[56];
  };
  struct OrderLine {  // 32 bytes
    std::uint32_t item;
    std::uint32_t supply_w;
    std::int32_t quantity;
    std::int32_t amount;
    char info[16];
  };
  struct OrderHeader {  // 48 bytes
    std::uint32_t magic;  // kOrderMagic when the slot holds an order
    std::uint32_t o_id;
    std::uint32_t district;
    std::uint32_t customer;
    std::uint32_t line_count;
    std::uint32_t carrier;  // 0 until delivered
    char filler[24];
  };
  struct OrderSlot {  // header + full line array
    OrderHeader header;
    OrderLine lines[kMaxOrderLines];
  };
  static constexpr std::uint32_t kOrderMagic = 0x4f524445u;  // "ORDE"

  void txn_new_order(core::TransactionStore& store, Rng& rng);
  void txn_payment(core::TransactionStore& store, Rng& rng);
  void txn_delivery(core::TransactionStore& store, Rng& rng);

  std::size_t warehouse_off(std::size_t w) const { return warehouses_off_ + w * sizeof(Warehouse); }
  std::size_t district_off(std::size_t w, std::size_t d) const {
    return districts_off_ + (w * kDistrictsPerWarehouse + d) * sizeof(District);
  }
  std::size_t customer_off(std::size_t w, std::size_t d, std::size_t c) const {
    return customers_off_ +
           ((w * kDistrictsPerWarehouse + d) * customers_per_district_ + c) * sizeof(Customer);
  }
  std::size_t stock_off(std::size_t i) const { return stock_off_ + i * sizeof(StockItem); }
  std::size_t order_slot_off(std::size_t s) const { return orders_off_ + s * sizeof(OrderSlot); }

  std::size_t db_size_;
  std::size_t num_warehouses_ = 1;
  std::size_t customers_per_district_ = kCustomersPerDistrict;
  std::size_t num_stock_items_ = 0;
  std::size_t num_order_slots_ = 0;
  std::size_t warehouses_off_ = 0, districts_off_ = 0, customers_off_ = 0, stock_off_ = 0,
              orders_off_ = 0;
};

}  // namespace vrep::wl
