#include "workload/order_entry.hpp"

#include <cstring>

#include "util/check.hpp"

namespace vrep::wl {

using sim::TrafficClass;

namespace {
// set_range granularity for the hot prefix of warehouse/district/stock rows.
constexpr std::size_t kHotPrefix = 16;
constexpr std::size_t kStockPerNewOrder = 5;

// Read-side work per transaction type that the update-focused model above
// does not perform explicitly: TPC-C's New-Order reads ~25 rows (item,
// stock, customer, warehouse), Payment and Delivery somewhat fewer. On the
// paper's 600 MHz Alpha this row-lookup work dominates Order-Entry's
// transaction cost (its absolute TPS is ~3x lower than Debit-Credit's);
// we charge it as a fixed virtual-time cost per transaction type.
constexpr sim::SimTime kNewOrderReadNs = 8000;
constexpr sim::SimTime kPaymentReadNs = 4200;
constexpr sim::SimTime kDeliveryReadNs = 5200;
}  // namespace

OrderEntry::OrderEntry(std::size_t db_size) : db_size_(db_size) {
  // One warehouse per ~48 MB, TPC-C-style ratios below it; the order ring
  // absorbs whatever space remains.
  num_warehouses_ = std::max<std::size_t>(1, db_size / (48ull << 20));
  // Full TPC-C stock is 50k items per warehouse; cap its footprint at ~25%
  // of small databases so the order ring keeps room.
  num_stock_items_ =
      std::min<std::size_t>(50'000 * num_warehouses_, db_size / (4 * sizeof(StockItem)));

  std::size_t fixed = num_warehouses_ * sizeof(Warehouse) +
                      num_warehouses_ * kDistrictsPerWarehouse * sizeof(District) +
                      num_stock_items_ * sizeof(StockItem);
  // Shrink the customer population on small databases.
  customers_per_district_ = kCustomersPerDistrict;
  while (customers_per_district_ > 100 &&
         fixed + num_warehouses_ * kDistrictsPerWarehouse * customers_per_district_ *
                     sizeof(Customer) >
             db_size * 6 / 10) {
    customers_per_district_ /= 2;
  }
  const std::size_t customers_bytes =
      num_warehouses_ * kDistrictsPerWarehouse * customers_per_district_ * sizeof(Customer);
  VREP_CHECK(fixed + customers_bytes < db_size);

  warehouses_off_ = 0;
  districts_off_ = warehouses_off_ + num_warehouses_ * sizeof(Warehouse);
  customers_off_ =
      districts_off_ + num_warehouses_ * kDistrictsPerWarehouse * sizeof(District);
  stock_off_ = customers_off_ + customers_bytes;
  orders_off_ = stock_off_ + num_stock_items_ * sizeof(StockItem);
  num_order_slots_ = (db_size - orders_off_) / sizeof(OrderSlot);
  VREP_CHECK(num_order_slots_ >= kDistrictsPerWarehouse * num_warehouses_);
}

void OrderEntry::initialize(core::TransactionStore& store) {
  // Zero state is consistent (all ytd equal, no orders); stock quantities
  // start at a nominal level so deliveries/new-orders have something to work
  // with. Initialisation is off the measured path.
  std::uint8_t* db = store.db();
  for (std::size_t i = 0; i < num_stock_items_; ++i) {
    StockItem s{};
    s.quantity = 100;
    std::memcpy(db + stock_off(i), &s, sizeof s);
  }
}

void OrderEntry::txn_new_order(core::TransactionStore& store, Rng& rng) {
  sim::MemBus& bus = store.bus();
  std::uint8_t* db = store.db();
  const std::size_t w = rng.below(num_warehouses_);
  const std::size_t d = rng.below(kDistrictsPerWarehouse);
  const std::size_t c = rng.below(customers_per_district_);
  const std::size_t line_count = 5 + rng.below(kMaxOrderLines - 5 + 1);

  bus.charge(kNewOrderReadNs);
  core::Transaction txn(store);

  // District: allocate the order id.
  auto* dist = reinterpret_cast<District*>(db + district_off(w, d));
  txn.set_range(dist, kHotPrefix);
  std::uint32_t o_id;
  bus.read(&dist->next_o_id, 4);
  std::memcpy(&o_id, &dist->next_o_id, 4);
  const std::uint32_t next = o_id + 1;
  bus.write(&dist->next_o_id, &next, 4, TrafficClass::kModified);

  // Order slot: per-district sub-ring indexed by o_id.
  const std::size_t slots_per_district =
      num_order_slots_ / (num_warehouses_ * kDistrictsPerWarehouse);
  const std::size_t slot = (w * kDistrictsPerWarehouse + d) * slots_per_district +
                           o_id % slots_per_district;
  auto* order = reinterpret_cast<OrderSlot*>(db + order_slot_off(slot));
  txn.set_range(order, sizeof(OrderHeader) + line_count * sizeof(OrderLine));
  OrderHeader hdr{};
  hdr.magic = kOrderMagic;
  hdr.o_id = o_id;
  hdr.district = static_cast<std::uint32_t>(w * kDistrictsPerWarehouse + d);
  hdr.customer = static_cast<std::uint32_t>(c);
  hdr.line_count = static_cast<std::uint32_t>(line_count);
  hdr.carrier = 0;
  bus.write(&order->header, &hdr, 28, TrafficClass::kModified);

  for (std::size_t l = 0; l < line_count; ++l) {
    struct {
      std::uint32_t item;
      std::uint16_t quantity;
      std::uint16_t amount;
    } line{static_cast<std::uint32_t>(rng.below(num_stock_items_)),
           static_cast<std::uint16_t>(1 + rng.below(10)),
           static_cast<std::uint16_t>(1 + rng.below(9999))};
    bus.write(&order->lines[l], &line, 8, TrafficClass::kModified);
  }

  // Stock updates for a subset of the ordered items (scattered rows).
  for (std::size_t s = 0; s < kStockPerNewOrder; ++s) {
    auto* stock = reinterpret_cast<StockItem*>(db + stock_off(rng.below(num_stock_items_)));
    txn.set_range(stock, kHotPrefix);
    std::int32_t quantity, order_cnt;
    bus.read(stock, 8);
    std::memcpy(&quantity, &stock->quantity, 4);
    std::memcpy(&order_cnt, &stock->order_cnt, 4);
    quantity = quantity > 10 ? quantity - static_cast<std::int32_t>(1 + rng.below(10))
                             : quantity + 91;
    order_cnt += 1;
    struct {
      std::int32_t q, c;
    } upd{quantity, order_cnt};
    bus.write(stock, &upd, 8, TrafficClass::kModified);
  }

  txn.commit();
}

void OrderEntry::txn_payment(core::TransactionStore& store, Rng& rng) {
  sim::MemBus& bus = store.bus();
  std::uint8_t* db = store.db();
  const std::size_t w = rng.below(num_warehouses_);
  const std::size_t d = rng.below(kDistrictsPerWarehouse);
  const std::size_t c = rng.below(customers_per_district_);
  const std::int64_t amount = rng.range(1, 500'000);

  bus.charge(kPaymentReadNs);
  core::Transaction txn(store);

  auto* wh = reinterpret_cast<Warehouse*>(db + warehouse_off(w));
  txn.set_range(wh, kHotPrefix);
  std::int64_t wytd;
  bus.read(&wh->ytd, 8);
  std::memcpy(&wytd, &wh->ytd, 8);
  wytd += amount;
  bus.write(&wh->ytd, &wytd, 8, TrafficClass::kModified);

  auto* dist = reinterpret_cast<District*>(db + district_off(w, d));
  txn.set_range(dist, kHotPrefix);
  std::int64_t dytd;
  bus.read(&dist->ytd, 8);
  std::memcpy(&dytd, &dist->ytd, 8);
  dytd += amount;
  bus.write(&dist->ytd, &dytd, 8, TrafficClass::kModified);

  auto* cust = reinterpret_cast<Customer*>(db + customer_off(w, d, c));
  txn.set_range(cust, sizeof(Customer));
  struct {
    std::int64_t balance;
    std::int64_t ytd_payment;
    std::uint32_t payment_cnt;
  } cupd;
  bus.read(cust, 20);
  std::memcpy(&cupd, cust, 20);
  cupd.balance -= amount;
  cupd.ytd_payment += amount;
  cupd.payment_cnt += 1;
  bus.write(cust, &cupd, 20, TrafficClass::kModified);

  txn.commit();
}

void OrderEntry::txn_delivery(core::TransactionStore& store, Rng& rng) {
  sim::MemBus& bus = store.bus();
  std::uint8_t* db = store.db();
  bus.charge(kDeliveryReadNs);

  // Probe a handful of slots for an undelivered order.
  OrderSlot* order = nullptr;
  std::size_t probes = 10;
  while (probes-- > 0) {
    auto* cand = reinterpret_cast<OrderSlot*>(db + order_slot_off(rng.below(num_order_slots_)));
    bus.read(&cand->header, sizeof(OrderHeader));
    if (cand->header.magic == kOrderMagic && cand->header.carrier == 0) {
      order = cand;
      break;
    }
  }
  if (order == nullptr) return;  // nothing to deliver yet

  const std::size_t wd = order->header.district;
  const std::size_t w = wd / kDistrictsPerWarehouse;
  const std::size_t d = wd % kDistrictsPerWarehouse;
  const std::size_t c = order->header.customer;

  std::int64_t total = 0;
  for (std::uint32_t l = 0; l < order->header.line_count; ++l) {
    std::uint16_t amount;
    bus.read(&order->lines[l], 8);
    std::memcpy(&amount, reinterpret_cast<std::uint8_t*>(&order->lines[l]) + 6, 2);
    total += amount;
  }

  core::Transaction txn(store);

  txn.set_range(&order->header, sizeof(OrderHeader));
  const std::uint32_t carrier = static_cast<std::uint32_t>(1 + rng.below(10));
  bus.write(&order->header.carrier, &carrier, 4, TrafficClass::kModified);

  auto* cust = reinterpret_cast<Customer*>(db + customer_off(w, d, c));
  txn.set_range(cust, sizeof(Customer));
  struct {
    std::int64_t balance;
  } bal;
  bus.read(cust, 8);
  std::memcpy(&bal, cust, 8);
  bal.balance += total;
  bus.write(&cust->balance, &bal, 8, TrafficClass::kModified);
  std::uint32_t dcnt;
  std::memcpy(&dcnt, &cust->delivery_cnt, 4);
  dcnt += 1;
  bus.write(&cust->delivery_cnt, &dcnt, 4, TrafficClass::kModified);

  txn.commit();
}

void OrderEntry::run_txn(core::TransactionStore& store, Rng& rng) {
  const std::uint64_t pick = rng.below(100);
  if (pick < 45) {
    txn_new_order(store, rng);
  } else if (pick < 88) {
    txn_payment(store, rng);
  } else {
    txn_delivery(store, rng);
  }
}

std::string OrderEntry::check_consistency(const core::TransactionStore& store) const {
  const std::uint8_t* db = store.db();
  for (std::size_t w = 0; w < num_warehouses_; ++w) {
    std::int64_t wytd;
    std::memcpy(&wytd, db + warehouse_off(w), 8);
    std::int64_t dsum = 0;
    for (std::size_t d = 0; d < kDistrictsPerWarehouse; ++d) {
      std::int64_t dytd;
      std::memcpy(&dytd, db + district_off(w, d), 8);
      dsum += dytd;
    }
    if (wytd != dsum) {
      return "warehouse " + std::to_string(w) + " ytd " + std::to_string(wytd) +
             " != district sum " + std::to_string(dsum);
    }
  }
  // Every populated order slot must be structurally sound.
  for (std::size_t s = 0; s < num_order_slots_; ++s) {
    OrderHeader hdr;
    std::memcpy(&hdr, db + order_slot_off(s), sizeof hdr);
    if (hdr.magic == 0) continue;
    if (hdr.magic != kOrderMagic) return "order slot " + std::to_string(s) + " torn magic";
    if (hdr.line_count < 5 || hdr.line_count > kMaxOrderLines) {
      return "order slot " + std::to_string(s) + " bad line count";
    }
    if (hdr.district >= num_warehouses_ * kDistrictsPerWarehouse ||
        hdr.customer >= customers_per_district_) {
      return "order slot " + std::to_string(s) + " bad references";
    }
  }
  return {};
}

}  // namespace vrep::wl
